"""Metrics registry: counters, gauges and percentile histograms.

Where the tracer (:mod:`repro.obs.tracer`) answers *"what happened when"*,
the registry answers *"how much / how often / how slow"*: cache hit/miss
counts, pool checkout waits, batch sizes, prepare and run latencies.  The
serving layer's ``EngineStats`` / ``BatchStats`` are thin views over one
of these registries, so the counters a test asserts on and the snapshot
``cli metrics`` exports are the same numbers.

Everything is thread-safe.  Histograms keep exact count/sum/min/max over
all observations plus a bounded window of recent raw values (default
4096) for percentiles, so a long-running server cannot grow without
bound.  Percentiles use linear interpolation on the sorted window — the
same definition as ``numpy.percentile``'s default, which the test suite
verifies against.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> Union[int, float]:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (pool idle count, last batch size)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> float:
        """Atomically add ``delta`` and return the new value.

        Concurrent updaters must use this rather than read-modify-``set``
        (``g.set(g.value + 1)`` from two threads loses updates — the race
        the sanitizer caught on ``pool.idle``).
        """
        with self._lock:
            self._value += delta
            return self._value

    def track_max(self, value: float) -> None:
        """Keep the running maximum of every value seen."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency/size distribution with p50/p90/p99 summaries.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    raw values (and therefore percentiles) cover the most recent
    ``window`` observations.
    """

    __slots__ = ("name", "_values", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, window: int = 4096) -> None:
        # window=0 would silently decouple percentiles from count: the
        # deque retains nothing, so percentile() reports 0.0 while
        # count/sum keep growing — a dashboard that lies.  Refuse it.
        if window < 1:
            raise ValueError(f"histogram {name!r} window must be >= 1, got {window}")
        self.name = name
        self._values: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._values.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def values(self) -> List[float]:
        """The windowed raw observations, oldest first."""
        with self._lock:
            return list(self._values)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the window (NumPy-compatible).

        ``q`` is in percent (0..100).  Degenerate windows behave as the
        property tests lock in: an empty histogram reports 0.0 for every
        ``q``; a single sample reports that sample for every ``q``; when
        fewer than ``window`` values have been observed the percentile
        covers exactly the observed values; once observations exceed the
        window only the most recent ``window`` values contribute (while
        count/sum/min/max stay exact over everything).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        rank = (len(values) - 1) * (q / 100.0)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return values[lo]
        a, b, t = values[lo], values[hi], rank - lo
        if t >= 0.5:
            # lerp from the nearer endpoint (as numpy does): a + (b-a)*t
            # loses catastrophically when t -> 1 and |a| dwarfs |b|
            return b - (b - a) * (1.0 - t)
        return a + (b - a) * t

    def summary(self) -> Dict[str, float]:
        """A stable, JSON-ready digest of the distribution."""
        with self._lock:
            count, total = self._count, self._sum
            vmin = self._min if self._count else 0.0
            vmax = self._max if self._count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": vmin,
            "max": vmax,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent and
    thread-safe); asking for an existing name as a different kind raises
    ``TypeError`` — silent kind confusion is how dashboards lie.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(name)
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def value(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        """Read a counter/gauge without creating it (absent → ``default``).

        Handy for reconciliation checks: a counter that never fired has
        no entry, and ``counter(name)`` would materialize a zero.
        """
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise TypeError(f"metric {name!r} is a {type(metric).__name__}; use summary()")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A stable JSON-serializable snapshot of every metric.

        Shape: ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: summary-dict}}`` with names sorted, so two
        snapshots of identical state serialize identically.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def describe(self) -> str:
        """Human-readable multi-line summary (used by the CLI)."""
        snap = self.snapshot()
        lines: List[str] = []
        for name, value in snap["counters"].items():
            lines.append(f"{name:32s} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name:32s} {value:g}")
        for name, s in snap["histograms"].items():
            lines.append(
                f"{name:32s} n={s['count']} mean={s['mean']:.2f} "
                f"p50={s['p50']:.2f} p90={s['p90']:.2f} p99={s['p99']:.2f} "
                f"max={s['max']:.2f}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


#: Process-wide default registry.  Unlike the tracer, this is a live
#: registry: metrics are cheap enough to record unconditionally, and a
#: default-configured session's prepare/run latencies land here so
#: ``cli metrics`` has something to show without plumbing.
_GLOBAL_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one."""
    global _GLOBAL_METRICS
    previous = _GLOBAL_METRICS
    _GLOBAL_METRICS = registry
    return previous
