"""Trace exporters: Chrome trace-event JSON and text reports.

The Chrome trace-event format (``{"traceEvents": [...]}``) loads directly
into Perfetto or ``chrome://tracing``; every span becomes a complete
(``"ph": "X"``) event, every :meth:`Tracer.instant` a point
(``"ph": "i"``) event, and every :meth:`Tracer.counter` sample a counter
(``"ph": "C"``) event that Perfetto renders as a live counter track
(KV utilization, batch occupancy) under the span lanes.  Real thread
idents are remapped to small stable lane numbers (main thread first,
then by first appearance) and labelled with ``thread_name`` metadata
(``"ph": "M"``) so parallel-branch execution shows as genuinely
overlapping lanes; executor pools name their workers
(``exec-worker``, ``prepare-scheme``) so short-lived prepare/decode
lanes are labeled, not bare tids.

Text views for terminals:

* :func:`top_ops_report` — the top-K operators by total wall time,
  aggregated over every run in the trace;
* :func:`waterfall_report` — a per-lane indent-by-nesting timeline with
  proportional bars.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "save_chrome_trace",
    "top_ops_report",
    "waterfall_report",
]

#: Synthetic process id for every exported event (one engine = one process).
TRACE_PID = 1


def _lane_map(spans: Sequence[Span]) -> Dict[int, int]:
    """Real thread ident -> small stable lane number.

    Lane 0 goes to the thread that recorded the first span (the main
    thread in every current caller); the rest follow in order of first
    appearance.
    """
    lanes: Dict[int, int] = {}
    for span in spans:
        if span.tid not in lanes:
            lanes[span.tid] = len(lanes)
    return lanes


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, object]]:
    """The trace-event list: thread metadata first, then spans in time order."""
    spans = tracer.spans
    names = tracer.thread_names
    lanes = _lane_map(spans)
    events: List[Dict[str, object]] = []
    for tid, lane in lanes.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": lane,
                "args": {"name": names.get(tid, f"thread-{tid}")},
            }
        )
    for span in sorted(spans, key=lambda s: s.start_us):
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.category or "default",
            "pid": TRACE_PID,
            "tid": lanes[span.tid],
            "ts": span.start_us,
        }
        if span.counter:
            # Counter track: Perfetto draws one track per (pid, name)
            # pair, plotting args values over time under the span lanes.
            event["ph"] = "C"
        elif span.instant:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span.dur_us
        if span.args:
            event["args"] = {k: _jsonable(v) for k, v in span.args.items()}
        events.append(event)
    return events


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """The full Chrome trace document for ``tracer``'s spans."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }


def save_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the Chrome trace JSON to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh)
    return path


def top_ops_report(tracer: Tracer, k: int = 10, category: str = "op") -> str:
    """The K most expensive operators by total wall time across the trace.

    Spans are aggregated by name (one operator traced over N runs
    contributes N samples), with each row showing call count, total and
    mean milliseconds and the share of all ``category`` time.
    """
    totals: Dict[str, List[float]] = {}
    meta: Dict[str, Span] = {}
    for span in tracer.spans:
        if span.category != category or span.instant:
            continue
        totals.setdefault(span.name, []).append(span.dur_ms)
        meta.setdefault(span.name, span)
    if not totals:
        return f"(no {category!r} spans recorded)"
    grand_total = sum(sum(v) for v in totals.values())
    ranked = sorted(totals.items(), key=lambda kv: -sum(kv[1]))[:k]
    lines = [
        f"top {min(k, len(ranked))} of {len(totals)} operators "
        f"by total wall time ({grand_total:.2f} ms traced):"
    ]
    for name, durs in ranked:
        total = sum(durs)
        op_type = meta[name].args.get("op", "")
        share = total / grand_total * 100.0 if grand_total else 0.0
        lines.append(
            f"  {name:28s} {str(op_type):16s} x{len(durs):<4d} "
            f"{total:8.2f} ms total  {total / len(durs):7.3f} ms/call  {share:5.1f}%"
        )
    return "\n".join(lines)


def waterfall_report(
    tracer: Tracer,
    width: int = 60,
    min_dur_ms: float = 0.0,
    categories: Optional[Sequence[str]] = None,
) -> str:
    """A per-thread-lane text timeline with proportional bars.

    Each lane lists its spans in start order, indented by nesting depth;
    the bar shows each span's position and extent within the whole
    trace window.  ``min_dur_ms`` hides sub-threshold spans (useful for
    op-dense traces); ``categories`` restricts to the given categories.
    """
    spans = [s for s in tracer.spans if not s.instant]
    if categories is not None:
        spans = [s for s in spans if s.category in categories]
    if min_dur_ms > 0:
        spans = [s for s in spans if s.dur_ms >= min_dur_ms]
    if not spans:
        return "(no spans recorded)"
    names = tracer.thread_names
    lanes = _lane_map(spans)
    t0 = min(s.start_us for s in spans)
    t1 = max(s.end_us for s in spans)
    window = max(t1 - t0, 1.0)
    lines: List[str] = []
    for tid, lane in lanes.items():
        lines.append(f"lane {lane} [{names.get(tid, tid)}]")
        for span in sorted(
            (s for s in spans if s.tid == tid), key=lambda s: (s.start_us, -s.dur_us)
        ):
            left = int((span.start_us - t0) / window * width)
            extent = max(int(span.dur_us / window * width), 1)
            extent = min(extent, width - left) if left < width else 1
            bar = " " * left + "#" * extent
            label = "  " * span.depth + span.name
            lines.append(f"  {label:36.36s} |{bar:{width}s}| {span.dur_ms:9.3f} ms")
    return "\n".join(lines)
