"""Flight recorder: bounded event rings + deterministic postmortem dumps.

A :class:`FlightRecorder` sits behind a :class:`~repro.obs.requests.
RequestTracker` and keeps the last ``capacity`` timeline events of each
recent request in a per-request ring buffer (``deque(maxlen=...)``), so
memory stays bounded no matter how long a request decodes.  When the
engine hits one of the "page the on-call" conditions —
``DeadlineExceeded``, ``KVCacheOOM``, an isolated injected fault, or a
sanitizer finding — it calls :meth:`dump` and the recorder writes a
postmortem JSON artifact containing:

* the triggering request's event ring (and the trigger itself),
* the set of requests live at dump time,
* a counters-only metrics snapshot (deterministic mode) or the full
  snapshot including gauges and latency histograms,
* the active fault-injection state (``faults.injected`` /
  ``faults.isolated`` / retry and fallback tallies), and
* any extra context the caller attaches (sanitizer findings, exception
  detail).

**Determinism contract** (locked in by the chaos-storm tests): with
``deterministic=True`` the artifact contains no wall-clock values — event
``t_ms`` stamps, float-valued event args, gauges and histograms are all
dropped, and file names come from a dump counter, not a timestamp — so
two same-seed storms produce byte-identical postmortems.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from .metrics import MetricsRegistry, get_metrics

__all__ = ["FlightRecorder", "POSTMORTEM_SCHEMA"]

#: Bumped when the postmortem JSON layout changes shape.
POSTMORTEM_SCHEMA = 1

#: Counters summarizing fault-injection state, copied into every dump.
_FAULT_COUNTERS = (
    "faults.injected",
    "faults.isolated",
    "retry.attempts",
    "fallback.ops",
    "fallback.numeric",
    "fallback.cache",
    "fallback.evict",
    "breaker.opens",
)


def _safe_name(text: str) -> str:
    return "".join(c if (c.isalnum() or c in "-_.") else "_" for c in text)


class FlightRecorder:
    """Bounded per-request event rings with postmortem JSON dumps.

    ``capacity`` bounds events retained *per request*; ``max_requests``
    bounds how many request rings are kept (oldest evicted first), so a
    recorder attached to a long-running server cannot grow without
    bound.  Thread-safe: records arrive from every engine thread.
    """

    def __init__(
        self,
        capacity: int = 256,
        out_dir: Optional[str] = None,
        deterministic: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        max_requests: int = 128,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        self.capacity = capacity
        self.out_dir = out_dir or os.environ.get("REPRO_POSTMORTEM_DIR") or "."
        self.deterministic = deterministic
        self.metrics = metrics
        self.max_requests = max_requests
        self._lock = threading.Lock()
        self._rings: "OrderedDict[str, Deque]" = OrderedDict()
        self._dumps: List[str] = []
        self._dump_count = 0

    def _registry(self) -> MetricsRegistry:
        return self.metrics if self.metrics is not None else get_metrics()

    # -- recording ----------------------------------------------------------
    def record(self, event) -> None:
        """Append a timeline event to its request's ring (creates it)."""
        with self._lock:
            ring = self._rings.get(event.request_id)
            if ring is None:
                while len(self._rings) >= self.max_requests:
                    self._rings.popitem(last=False)
                ring = self._rings[event.request_id] = deque(maxlen=self.capacity)
            ring.append(event)

    def events(self, request_id: str) -> List:
        """Snapshot of one request's retained events, oldest first."""
        with self._lock:
            ring = self._rings.get(request_id)
            return list(ring) if ring is not None else []

    # -- dumping ------------------------------------------------------------
    @property
    def dumps(self) -> List[str]:
        """Paths of every postmortem written so far, in dump order."""
        with self._lock:
            return list(self._dumps)

    def payload(
        self,
        trigger: str,
        request_id: Optional[str] = None,
        live_requests: Optional[List[str]] = None,
        **extra,
    ) -> Dict[str, object]:
        """Build the postmortem dict (what :meth:`dump` serializes).

        Split out so tests can assert on structure without touching the
        filesystem.
        """
        det = self.deterministic
        with self._lock:
            if request_id is not None:
                rings = {request_id: list(self._rings.get(request_id, ()))}
            else:
                rings = {rid: list(ring) for rid, ring in self._rings.items()}
        snap = self._registry().snapshot()
        fault_state = {
            name: snap["counters"][name]
            for name in _FAULT_COUNTERS
            if name in snap["counters"]
        }
        payload: Dict[str, object] = {
            "schema": POSTMORTEM_SCHEMA,
            "trigger": trigger,
            "request": request_id,
            "deterministic": det,
            "live_requests": sorted(live_requests or []),
            "fault_state": fault_state,
            "timelines": {
                rid: [e.to_dict(det) for e in events]
                for rid, events in sorted(rings.items())
            },
        }
        if det:
            payload["metrics"] = {"counters": snap["counters"]}
        else:
            payload["metrics"] = snap
        for key in sorted(extra):
            payload[key] = extra[key]
        return payload

    def dump(
        self,
        trigger: str,
        request_id: Optional[str] = None,
        live_requests: Optional[List[str]] = None,
        **extra,
    ) -> str:
        """Write a postmortem artifact; returns its path."""
        payload = self.payload(
            trigger, request_id=request_id, live_requests=live_requests, **extra
        )
        with self._lock:
            n = self._dump_count
            self._dump_count += 1
        tag = _safe_name(request_id) if request_id else "all"
        name = f"postmortem-{n:03d}-{tag}-{_safe_name(trigger)}.json"
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        with self._lock:
            self._dumps.append(path)
        self._registry().counter("recorder.dumps").inc()
        return path
