"""Graph visualization: export a graph to Graphviz dot text.

Part of the "more tools for user convenience" extension; render with
``dot -Tpng model.dot -o model.png`` if graphviz is installed.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.graph import Graph
from ..ir.ops import Op

__all__ = ["to_dot"]

#: Node fill colors by op family (kept dot-safe / X11 names).
_COLORS = {
    Op.CONV2D: "lightblue",
    Op.DEPTHWISE_CONV2D: "lightskyblue",
    Op.CONV_TRANSPOSE2D: "lightblue",
    Op.FULLY_CONNECTED: "lightsalmon",
    Op.MATMUL: "lightsalmon",
    Op.LSTM: "plum",
    Op.BATCH_NORM: "lightyellow",
    Op.LAYER_NORM: "lightyellow",
    Op.CONCAT: "lightgrey",
    Op.SPLIT: "lightgrey",
    Op.ADD: "palegreen",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(graph: Graph, schemes: Optional[Dict] = None) -> str:
    """Render ``graph`` as Graphviz dot text.

    Args:
        schemes: optional per-conv :class:`SchemeDecision` map; when given,
            conv nodes are annotated with their selected scheme.
    """
    lines = [f'digraph "{_escape(graph.name)}" {{', "  rankdir=TB;",
             '  node [shape=box, style=filled, fillcolor=white, fontsize=10];']
    for name in graph.inputs:
        desc = graph.desc(name)
        lines.append(
            f'  "{_escape(name)}" [label="{_escape(name)}\\n{desc.shape}", '
            f'shape=ellipse, fillcolor=honeydew];'
        )
    producers = graph.producer_map()
    for node in graph.nodes:
        label = f"{node.op_type}"
        if node.op_type in (Op.CONV2D, Op.DEPTHWISE_CONV2D):
            label += f"\\nk={tuple(node.attrs['kernel'])} s={tuple(node.attrs['stride'])}"
        if schemes and node.name in schemes:
            decision = schemes[node.name]
            label += f"\\n[{decision.kind}"
            if decision.kind == "winograd":
                label += f" n={decision.winograd_n}"
            label += "]"
        out_desc = graph.tensor_descs.get(node.outputs[0])
        if out_desc is not None:
            label += f"\\n{out_desc.shape}"
        color = _COLORS.get(node.op_type, "white")
        lines.append(
            f'  "{_escape(node.name)}" [label="{_escape(label)}", fillcolor={color}];'
        )
        for inp in node.inputs:
            if inp in graph.constants:
                continue
            source = producers[inp].name if inp in producers else inp
            lines.append(f'  "{_escape(source)}" -> "{_escape(node.name)}";')
    for name in graph.outputs:
        if name in producers:
            lines.append(
                f'  "out_{_escape(name)}" [label="{_escape(name)}", '
                f'shape=ellipse, fillcolor=mistyrose];'
            )
            lines.append(f'  "{_escape(producers[name].name)}" -> "out_{_escape(name)}";')
    lines.append("}")
    return "\n".join(lines)
