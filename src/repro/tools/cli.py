"""Command-line tools (the paper's future work item 3: "more tools for
user convenience").

Usage::

    python -m repro.tools.cli info model.rmnn
    python -m repro.tools.cli lint model.rmnn [--strict]
    python -m repro.tools.cli build mobilenet_v1 -o model.rmnn --input-size 224
    python -m repro.tools.cli optimize model.rmnn -o optimized.rmnn [--verify]
    python -m repro.tools.cli quantize model.rmnn -o int8.rmnn
    python -m repro.tools.cli prune model.rmnn -o pruned.rmnn --sparsity 0.6
    python -m repro.tools.cli fp16 model.rmnn -o half.rmnn
    python -m repro.tools.cli benchmark model.rmnn --threads 4 --repeats 10
    python -m repro.tools.cli trace model.rmnn -o trace.json [--runs 3]
    python -m repro.tools.cli metrics [model.rmnn] [--runs 10] [--prom] [--selftest]
    python -m repro.tools.cli warm model.rmnn [--cache-dir DIR]
    python -m repro.tools.cli serve model.rmnn --requests 64 --clients 4 [--selftest]
    python -m repro.tools.cli cluster [model.rmnn] --workers 2 --requests 32 [--selftest]
    python -m repro.tools.cli estimate model.rmnn --device Mate20 --engine MNN
    python -m repro.tools.cli devices
    python -m repro.tools.cli schemes model.rmnn
    python -m repro.tools.cli chaos [model.rmnn] --seed 0 --faults 200 [--sanitize]
    python -m repro.tools.cli sanitize [--static-only] [--faults 50]
    python -m repro.tools.cli regress BENCH_decode.json [--threshold 0.5]

Every command returns 0 on success and prints human-readable output; the
module-level :func:`main` takes an argv list for testability.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _load(path: str):
    from ..ir import load_model

    return load_model(path)


def _random_feeds(graph, seed: int = 0):
    rng = np.random.default_rng(seed)
    feeds = {}
    for name in graph.inputs:
        desc = graph.desc(name)
        if np.issubdtype(desc.dtype.np_dtype, np.integer):
            feeds[name] = rng.integers(0, 100, desc.shape).astype(desc.dtype.np_dtype)
        else:
            feeds[name] = rng.standard_normal(desc.shape).astype(desc.dtype.np_dtype)
    return feeds


def cmd_info(args) -> int:
    from ..converter import weight_bytes
    from ..core import node_muls

    graph = _load(args.model)
    muls = sum(node_muls(node, graph) for node in graph.nodes)
    print(f"model:     {graph.name}")
    print(f"inputs:    "
          + ", ".join(f"{n}{graph.desc(n).shape}:{graph.desc(n).dtype.value}"
                      for n in graph.inputs))
    print(f"outputs:   " + ", ".join(f"{n}{graph.desc(n).shape}" for n in graph.outputs))
    print(f"operators: {len(graph.nodes)}")
    for op, count in sorted(graph.op_histogram().items(), key=lambda kv: -kv[1]):
        print(f"  {op:20s} {count}")
    print(f"weights:   {len(graph.constants)} tensors, "
          f"{weight_bytes(graph) / 2**20:.2f} MiB")
    print(f"compute:   {muls / 1e6:.1f} M multiplications per inference")
    return 0


def cmd_lint(args) -> int:
    from ..analysis import (
        Severity,
        check_memory_plan,
        format_diagnostics,
        lint_graph,
        summarize,
    )
    from ..core import plan_memory
    from ..ir.graph import GraphError

    graph = _load(args.model)
    diags = list(lint_graph(graph))
    structural_errors = any(d.severity is Severity.ERROR for d in diags)
    if not structural_errors and not args.no_memcheck:
        # Only sanitize the memory plan once the graph itself is sound —
        # planning a structurally broken graph would just crash.
        try:
            report = check_memory_plan(graph, plan_memory(graph))
            diags.extend(report.diagnostics)
            print(f"memcheck: {report.summary()}")
        except GraphError as exc:
            from ..analysis.diagnostics import error

            diags.extend(exc.diagnostics or [error("memcheck-failed", str(exc))])
    if diags:
        print(format_diagnostics(diags))
    failing = [
        d for d in diags
        if d.severity is Severity.ERROR or (args.strict and d.severity is Severity.WARNING)
    ]
    print(f"lint: {summarize(diags)}"
          + (" (strict)" if args.strict else ""))
    return 1 if failing else 0


def cmd_build(args) -> int:
    from ..ir import save_model
    from ..models import MODEL_REGISTRY, build_model

    if args.model_name not in MODEL_REGISTRY:
        print(f"unknown model {args.model_name!r}; available: "
              f"{', '.join(sorted(MODEL_REGISTRY))}", file=sys.stderr)
        return 1
    kwargs = {"seed": args.seed}
    if args.model_name not in ("tiny_transformer", "tiny_decoder", "lstm_classifier"):
        kwargs["input_size"] = args.input_size
    graph = build_model(args.model_name, **kwargs)
    save_model(graph, args.output)
    print(f"wrote {args.output}: {len(graph.nodes)} ops")
    return 0


def cmd_optimize(args) -> int:
    from ..converter import optimize
    from ..ir import save_model

    graph = _load(args.model)
    before = len(graph.nodes)
    optimize(graph, verify=args.verify)
    save_model(graph, args.output)
    verified = " (every pass verified)" if args.verify else ""
    print(f"optimized {before} -> {len(graph.nodes)} ops{verified}; wrote {args.output}")
    return 0


def cmd_quantize(args) -> int:
    from ..converter import quantize_model, weight_bytes
    from ..ir import save_model

    if args.selftest:
        return _quantize_selftest()
    if not args.model or not args.output:
        print("quantize: MODEL and -o/--output are required without --selftest")
        return 2
    graph = _load(args.model)
    feeds = [_random_feeds(graph, seed) for seed in range(args.calibration_batches)]
    quantized = quantize_model(graph, feeds)
    save_model(quantized, args.output)
    print(f"quantized: {weight_bytes(graph) / 2**20:.2f} MiB -> "
          f"{weight_bytes(quantized) / 2**20:.2f} MiB; wrote {args.output}")
    return 0


def _quantize_selftest() -> int:
    """The int8 stack's three contracts, checked end to end.

    1. Accuracy: quantizing the tiny decoder's MatMul weights moves its
       logits by at most a small bound (and the quantized graph is
       Q-rule clean).
    2. Determinism: two same-seed generations over int8 weights *and*
       an int8 KV cache emit bit-identical token streams.
    3. Capacity: the int8 KV layout holds at least 3x the tokens of the
       fp32 layout in the same arena bytes.
    """
    from dataclasses import replace as _replace

    from ..analysis import lint_graph
    from ..genai import GenerationConfig, GenerationEngine, SamplingParams
    from ..models.text import tiny_decoder
    from ..quant import max_abs_error, quantize_graph

    failures = 0
    bound = 0.15

    graph = tiny_decoder(mode="full", seq_len=16, batch=1, vocab=64,
                         max_seq=16, d_model=32, heads=2, layers=2, seed=7)
    quantized = quantize_graph(graph)
    q_diags = [d for d in lint_graph(quantized) if d.rule.startswith("Q")]
    ok = not q_diags
    print(f"[{'ok' if ok else 'FAIL'}] quantized graph passes Q-rule lint "
          f"({len(q_diags)} findings)")
    failures += 0 if ok else 1

    rng = np.random.default_rng(0)
    feeds = {
        "tokens": rng.integers(0, 64, size=(1, 16)).astype(np.int32),
        "positions": np.arange(16, dtype=np.int32).reshape(1, 16),
    }
    err = max_abs_error(graph, quantized, feeds, outputs=["logits"])
    ok = err <= bound
    print(f"[{'ok' if ok else 'FAIL'}] logits max-abs-error {err:.4f} "
          f"<= {bound} (per-channel int8 weights, exact int32 GEMM)")
    failures += 0 if ok else 1

    def _generate():
        engine = GenerationEngine(GenerationConfig(
            vocab=64, max_seq=24, d_model=16, heads=2, layers=1, seed=11,
            max_batch=2, page_tokens=4, capacity_tokens=64,
            smallest_bucket=8, kv_dtype="int8", quantize_weights=True,
        ))
        try:
            gen = np.random.default_rng(11)
            prompts = [
                [int(t) for t in gen.integers(0, 64, size=int(n))]
                for n in gen.integers(2, 7, size=4)
            ]
            results = engine.generate(prompts, SamplingParams(max_tokens=8))
            return [r.tokens for r in results], engine.kv_config
        finally:
            engine.close()

    tokens_a, kv_config = _generate()
    tokens_b, _ = _generate()
    ok = tokens_a == tokens_b
    print(f"[{'ok' if ok else 'FAIL'}] seeded replay of quantized decode is "
          f"bit-identical ({sum(len(t) for t in tokens_a)} tokens)")
    failures += 0 if ok else 1

    fp_config = _replace(kv_config, kv_dtype="float32")
    ratio = fp_config.per_token_bytes / kv_config.per_token_bytes
    ok = ratio >= 3.0
    print(f"[{'ok' if ok else 'FAIL'}] int8 KV fits {ratio:.2f}x the tokens "
          f"per arena byte ({fp_config.per_token_bytes} -> "
          f"{kv_config.per_token_bytes} B/token; need >= 3x)")
    failures += 0 if ok else 1

    print("quantize selftest:", "ok" if failures == 0 else f"{failures} FAILED")
    return 0 if failures == 0 else 1


def cmd_prune(args) -> int:
    from ..converter import prune_model
    from ..ir import save_model

    graph = _load(args.model)
    pruned, report = prune_model(graph, args.sparsity)
    save_model(pruned, args.output)
    print(f"pruned to {report.achieved_sparsity * 100:.1f}% sparsity "
          f"(target {report.target_sparsity * 100:.0f}%); "
          f"sparse storage {report.compression:.2f}x denser-than-dense is "
          f"{'worth it' if report.compression > 1 else 'not worth it yet'}; "
          f"wrote {args.output}")
    return 0


def cmd_fp16(args) -> int:
    from ..converter import convert_to_fp16, fp16_savings
    from ..ir import save_model

    graph = _load(args.model)
    converted = convert_to_fp16(graph)
    before, after = fp16_savings(graph, converted)
    save_model(converted, args.output)
    print(f"fp16 weights: {before / 2**20:.2f} MiB -> {after / 2**20:.2f} MiB; "
          f"wrote {args.output}")
    return 0


def cmd_benchmark(args) -> int:
    from ..bench import time_callable
    from ..core import Session, SessionConfig

    graph = _load(args.model)
    session = Session(graph, SessionConfig(threads=args.threads))
    feeds = _random_feeds(graph)
    timing = time_callable(lambda: session.run(feeds), repeats=args.repeats)
    print(f"schemes: {session.scheme_summary()}")
    plan = session.memory_plan
    print(f"memory:  arena {plan.arena_bytes / 2**20:.1f} MiB "
          f"({plan.reuse_ratio:.1f}x reuse, peak {plan.peak_bytes / 2**20:.1f} MiB, "
          f"{plan.utilization() * 100:.0f}% utilized at worst step)")
    print(f"latency: median {timing.median_ms:.1f} ms, min {timing.min_ms:.1f} ms "
          f"over {args.repeats} runs ({args.threads} threads)")
    if args.profile:
        _, profile = session.run_profiled(feeds)
        profile.sort(key=lambda p: -p.wall_ms)
        print("slowest operators:")
        for p in profile[:args.profile]:
            print(f"  {p.node:24s} {p.op_type:16s} {p.wall_ms:7.2f} ms")
    return 0


def cmd_trace(args) -> int:
    """Record a Chrome trace of pre-inference + execution (serial and parallel)."""
    from ..core import Session, SessionConfig
    from ..obs import Tracer, save_chrome_trace, top_ops_report, waterfall_report

    graph = _load(args.model)
    tracer = Tracer()
    feeds = _random_feeds(graph)
    # Serial session: pre-inference stage spans + per-op spans on one lane.
    session = Session(graph, SessionConfig(threads=args.threads, trace=tracer))
    for _ in range(args.runs):
        session.run(feeds)
    if not args.no_parallel:
        # Parallel session: same graph on the thread-pool dataflow path, so
        # the trace shows independent branches overlapping on worker lanes.
        parallel = Session(
            graph,
            SessionConfig(
                threads=args.threads, trace=tracer, parallel_branches=True
            ),
        )
        for _ in range(args.runs):
            parallel.run(feeds)
    save_chrome_trace(tracer, args.output)
    lanes = len({s.tid for s in tracer.spans})
    print(f"wrote {args.output}: {len(tracer.spans)} spans on {lanes} thread lanes "
          f"(load in Perfetto or chrome://tracing)")
    print(top_ops_report(tracer, k=args.top))
    if args.waterfall:
        print(waterfall_report(tracer, min_dur_ms=args.waterfall_min_ms))
    return 0


#: Prometheus families the no-model metrics selftest must export — the
#: request-tracking generation workload populates every one of them.
_PROM_SELFTEST_FAMILIES = (
    "repro_slo_requests_total",
    "repro_slo_queue_wait_ms",
    "repro_slo_ttft_ms",
    "repro_slo_tpot_ms",
    "repro_slo_tokens_per_sec",
    "repro_res_kv_page_utilization",
)


def cmd_metrics(args) -> int:
    """Run a workload and print/export the metrics registry snapshot.

    With a model: N plain session runs.  Without one: a tiny
    request-tracked generation workload, so the SLO histograms
    (queue-wait/TTFT/TPOT/tokens-per-sec) and resource gauges populate —
    this is the ``check.sh`` Prometheus selftest path.  ``--prom``
    exports the registry in Prometheus text exposition format;
    ``--selftest`` re-parses that export through the validating parser
    and (on the generation workload) requires the SLO families.
    """
    import json as _json

    from ..obs import MetricsRegistry, set_metrics

    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        if args.model:
            from ..core import Session, SessionConfig

            graph = _load(args.model)
            session = Session(
                graph, SessionConfig(threads=args.threads, sanitize=args.sanitize)
            )
            feeds = _random_feeds(graph)
            for _ in range(args.runs):
                session.run(feeds)
            if args.sanitize:
                # Flush lock-cycle detection so sanitize.* counters are final.
                session.sanitizer.report()
            workload = f"{args.runs} runs of {graph.name}"
        else:
            from ..genai import GenerationConfig, GenerationEngine, SamplingParams

            engine = GenerationEngine(GenerationConfig(
                vocab=64, max_seq=24, d_model=16, heads=2, layers=1,
                max_batch=2, page_tokens=4, metrics=registry,
                requests=True, sanitize=args.sanitize,
            ))
            rng = np.random.default_rng(0)
            prompts = [
                [int(t) for t in rng.integers(0, 64, size=4)] for _ in range(4)
            ]
            try:
                engine.generate(prompts, SamplingParams(max_tokens=6))
            finally:
                engine.close()
            workload = f"{len(prompts)}-request tracked generation"
    finally:
        set_metrics(previous)
    print(f"metrics after {workload}:")
    print(registry.describe())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            _json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    if args.prom or args.selftest:
        from ..obs import parse_prometheus, to_prometheus

        text = to_prometheus(registry)
        if args.prom:
            print(text, end="")
        if args.selftest:
            try:
                families = parse_prometheus(text)
            except ValueError as exc:
                print(f"prom selftest FAILED: {exc}", file=sys.stderr)
                return 1
            missing = (
                [f for f in _PROM_SELFTEST_FAMILIES if f not in families]
                if not args.model else []
            )
            if missing:
                print(f"prom selftest FAILED: missing SLO families "
                      f"{', '.join(missing)}", file=sys.stderr)
                return 1
            print(f"prom selftest: ok — {len(families)} families parsed"
                  + ("" if args.model else ", SLO histograms present"))
    return 0


def cmd_warm(args) -> int:
    """Populate the pre-inference cache for a model (cold once, warm after)."""
    import time as _time

    from ..core import Session, SessionConfig
    from ..kernels.winograd import clear_transform_cache
    from ..serving import Engine, EngineConfig, PreInferenceCache

    graph = _load(args.model)
    config = EngineConfig(
        session=SessionConfig(threads=args.threads),
        pool_size=1,
        cache_dir=args.cache_dir,
    )
    engine = Engine(graph, config)
    cache = engine.cache
    print(f"cache dir: {cache.root}")
    print(f"cache key: {engine.cache_key}")
    if engine.stats.cache_misses:
        cold = engine.stats.cold_prepare_ms[0]
        print(f"cold prepare: {cold:.1f} ms (entry written)")
        # Verify the warm path immediately, from a cleared transform cache.
        clear_transform_cache()
        artifacts = cache.load(engine.cache_key).apply()
        start = _time.perf_counter()
        Session(graph, config.session, artifacts=artifacts)
        warm = (_time.perf_counter() - start) * 1000.0
        print(f"warm prepare: {warm:.1f} ms ({cold / max(warm, 1e-9):.1f}x faster)")
    else:
        warm = engine.stats.warm_prepare_ms[0]
        print(f"already warm: prepare {warm:.1f} ms (cache hit)")
    return 0


def cmd_serve(args) -> int:
    """Drive concurrent traffic through a pooled engine and report stats."""
    import time as _time

    from ..core import Session, SessionConfig
    from ..serving import Engine, EngineConfig

    graph = _load(args.model)
    tracer = None
    if args.trace:
        from ..obs import Tracer

        tracer = Tracer()
    config = EngineConfig(
        session=SessionConfig(threads=args.threads),
        pool_size=args.pool,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        batching=args.batch > 0,
        max_batch=max(args.batch, 1),
        batch_timeout_ms=args.batch_timeout_ms,
        trace=tracer,
    )
    requests = [_random_feeds(graph, seed) for seed in range(args.requests)]
    with Engine(graph, config) as engine:
        start = _time.perf_counter()
        outputs = engine.infer_many(requests, clients=args.clients)
        elapsed = _time.perf_counter() - start
        throughput = len(requests) / elapsed if elapsed else float("inf")
        print(f"pool:       {engine.pool.size} sessions, {args.clients} clients")
        print(f"cache:      {engine.stats.describe()}")
        if engine.batcher is not None:
            bs = engine.batcher.stats
            print(f"batching:   {bs.requests} requests in {bs.batches} batches "
                  f"(mean {bs.mean_batch_size():.1f}/batch, "
                  f"max {bs.max_batch_seen}, {bs.resizes} resizes)")
        print(f"throughput: {len(requests)} requests in {elapsed * 1000:.0f} ms "
              f"= {throughput:.1f} req/s")

        if args.selftest:
            gold = Session(graph, SessionConfig(threads=args.threads))
            for feeds, got in zip(requests, outputs):
                want = gold.run(feeds)
                for name in want:
                    ok = (
                        np.array_equal(want[name], got[name])
                        if args.batch <= 0
                        else np.allclose(want[name], got[name], atol=1e-5)
                    )
                    if not ok:
                        print(f"selftest FAILED: output {name!r} diverges "
                              f"from serial execution", file=sys.stderr)
                        return 1
            mode = "allclose (batched)" if args.batch > 0 else "bit-identical"
            print(f"selftest:   ok — {len(requests)} concurrent results "
                  f"{mode} vs serial")
            print("metrics:")
            print(engine.metrics.describe())
    if tracer is not None:
        from ..obs import save_chrome_trace

        save_chrome_trace(tracer, args.trace)
        lanes = len({s.tid for s in tracer.spans})
        print(f"trace:      wrote {args.trace} "
              f"({len(tracer.spans)} spans, {lanes} lanes)")
    return 0


def cmd_cluster(args) -> int:
    """Multi-process router/worker tier: load drive, or crash-recovery
    selftest (spawn workers, SIGKILL one mid-session, assert supervised
    replacement and bit-identical post-recovery serving)."""
    import time as _time

    from ..bench import run_closed_loop
    from ..cluster import Backpressure, Cluster, ClusterConfig, Overloaded
    from ..obs import MetricsRegistry, to_prometheus

    if args.model:
        graph = _load(args.model)
    else:
        from ..faults.chaos import default_chaos_graph

        graph = default_chaos_graph()
    feeds = _random_feeds(graph)
    metrics = MetricsRegistry()
    cluster = Cluster(graph, ClusterConfig(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        device_dwell_ms=args.dwell_ms,
        metrics=metrics,
    ))
    try:
        print(f"cluster:  {args.workers} supervised workers, "
              f"queue bound {args.queue_depth}, "
              f"dwell {args.dwell_ms:.1f} ms")
        gold = cluster.infer(feeds)
        if args.selftest:
            health = cluster.health()
            if not all(h["up"] for h in health.values()):
                print("selftest: FAILED — not all workers came up")
                return 1
            print(f"selftest: all {args.workers} workers up, "
                  f"gold response recorded")
            pid = cluster.supervisor.kill(0)
            print(f"selftest: SIGKILLed worker 0 (pid {pid})")
            deadline = _time.monotonic() + 60.0
            while _time.monotonic() < deadline:
                if (cluster.supervisor.restarts(0) >= 1
                        and cluster.supervisor.is_up(0)):
                    break
                _time.sleep(0.02)
            else:
                print("selftest: FAILED — supervisor never replaced worker 0")
                return 1
            print(f"selftest: supervisor replaced worker 0 "
                  f"(restarts={cluster.supervisor.restarts(0)})")
            out = cluster.infer(feeds, session_key="selftest")
            identical = set(out) == set(gold) and all(
                np.array_equal(out[k], gold[k]) for k in out
            )
            health = cluster.health()
            if not identical:
                print("selftest: FAILED — post-recovery output diverged")
                return 1
            if not all(h["up"] for h in health.values()):
                print("selftest: FAILED — a worker is down after recovery")
                return 1
            print("selftest: post-recovery response bit-identical; health: "
                  + ", ".join(
                      f"w{s}(up={h['up']}, restarts={h['restarts']})"
                      for s, h in sorted(health.items())
                  ))
            print("selftest: OK")
            return 0
        rep = run_closed_loop(
            lambda c, i: cluster.infer(feeds),
            clients=args.clients,
            queries_per_client=max(1, args.requests // max(1, args.clients)),
            shed_errors=(Backpressure, Overloaded),
        )
        for label, value in rep.rows():
            print(f"  {label:32s} {value}")
        for slot, h in sorted(cluster.health().items()):
            print(f"  worker {slot}: up={h['up']} depth={h['queue_depth']} "
                  f"restarts={h['restarts']}")
        if args.prom:
            print(to_prometheus(metrics))
        return 0
    finally:
        cluster.close()


def cmd_estimate(args) -> int:
    from ..baselines import ENGINES
    from ..devices import DEVICES, get_device
    from ..sim import estimate_latency

    graph = _load(args.model)
    if args.device not in DEVICES:
        print(f"unknown device {args.device!r}; see `devices` command", file=sys.stderr)
        return 1
    if args.engine not in ENGINES:
        print(f"unknown engine {args.engine!r}; known: {', '.join(sorted(ENGINES))}",
              file=sys.stderr)
        return 1
    device = get_device(args.device)
    est = estimate_latency(graph, ENGINES[args.engine], device,
                           args.backend, args.threads)
    print(f"{args.engine} on {args.device} ({est.mode}): {est.total_ms:.1f} ms modeled")
    for op in est.slowest(5):
        print(f"  {op.node:24s} {op.op_type:16s} {op.ms:7.2f} ms ({op.algorithm})")
    return 0


def cmd_devices(args) -> int:
    from ..devices import DEVICES

    for name, spec in sorted(DEVICES.items()):
        freqs = "x".join(f"{f:g}" for f in sorted(set(spec.cpu_core_ghz), reverse=True))
        print(f"{name:10s} {spec.soc:16s} CPU {freqs} GHz  GPU {spec.gpu} "
              f"({spec.gpu_flops() / 1e9:.1f} GFLOPS)  [{spec.os}]")
    return 0


def cmd_autotune(args) -> int:
    from ..core import autotune_schemes

    graph = _load(args.model)
    report = autotune_schemes(graph, repeats=args.repeats)
    print(f"auto-tuned {len(report.decisions)} convolutions "
          f"in {report.tuning_ms:.0f} ms; cost-model agreement "
          f"{report.agreement_with_model() * 100:.0f}%")
    for name, decision in report.decisions.items():
        model = report.model_decisions[name]
        marker = "" if (decision.kind, decision.winograd_n) == (
            model.kind, model.winograd_n) else "   <- differs from cost model"
        extra = f" n={decision.winograd_n}" if decision.kind == "winograd" else ""
        print(f"  {name:24s} -> {decision.kind}{extra} "
              f"({decision.cost:.2f} ms){marker}")
    return 0


def cmd_dot(args) -> int:
    from ..core import select_graph_schemes
    from .visualize import to_dot

    graph = _load(args.model)
    schemes = select_graph_schemes(graph) if args.schemes else None
    text = to_dot(graph, schemes)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({text.count(chr(10)) + 1} lines)")
    else:
        print(text)
    return 0


def cmd_chaos(args) -> int:
    """Run the seeded fault-injection self-test storm (see repro.faults.chaos)."""
    from ..faults.chaos import run_chaos_storm

    graph = _load(args.model) if args.model else None
    report = run_chaos_storm(
        graph=graph, seed=args.seed, target_faults=args.faults,
        sanitize=args.sanitize, postmortem_dir=args.postmortem_dir,
        kv_dtype=args.kv_dtype,
    )
    print(report.describe())
    if args.events:
        print("injection sequence:")
        for i, (site, kind) in enumerate(report.events):
            print(f"  {i:4d} {site}:{kind}")
    return 0 if report.ok else 1


def cmd_sanitize(args) -> int:
    """Concurrency/lifecycle correctness gate: static C0xx lint over the
    source tree, then a sanitized dynamic self-check (a small fault storm
    with the race/lock-order/lifecycle detectors live)."""
    from pathlib import Path

    from ..analysis import (
        C_RULES,
        Severity,
        format_diagnostics,
        lint_source_tree,
        summarize,
    )

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[1]
    diags = lint_source_tree(root)
    print(f"static lint over {root}: {len(C_RULES)} rules (C001..C005)")
    if diags:
        print(format_diagnostics(diags))
    print(f"static: {summarize(diags)}")
    failing = [
        d for d in diags
        if d.severity is Severity.ERROR
        or (args.strict and d.severity is Severity.WARNING)
    ]
    rc = 1 if failing else 0

    if not args.static_only:
        from ..faults.chaos import run_chaos_storm

        report = run_chaos_storm(
            seed=args.seed, target_faults=args.faults, sanitize=True
        )
        print(report.describe())
        if not report.ok:
            rc = 1
    return rc


def cmd_generate(args) -> int:
    """Continuous-batching generation demo over the tiny decoder."""
    import time as _time

    from ..genai import GenerationConfig, GenerationEngine, SamplingParams

    tracer = None
    if args.trace:
        from ..obs import Tracer

        tracer = Tracer()
    config = GenerationConfig(
        max_seq=args.max_seq, d_model=args.d_model, heads=args.heads,
        layers=args.layers, seed=args.seed, max_batch=args.batch,
        page_tokens=args.page_tokens, trace=tracer,
        prefix_cache=args.prefix_cache,
    )
    engine = GenerationEngine(config)
    rng = np.random.default_rng(args.seed)
    shared = (
        [int(t) for t in rng.integers(0, config.vocab, size=args.shared_prefix)]
        if args.shared_prefix > 0 else []
    )
    prompts = [
        shared + [int(t) for t in rng.integers(0, config.vocab, size=int(n))]
        for n in rng.integers(2, max(3, args.max_seq // 4), size=args.prompts)
    ]
    params = SamplingParams(
        max_tokens=args.max_tokens, temperature=args.temperature,
        top_k=args.top_k, seed=args.seed,
    )
    start = _time.perf_counter()
    results = engine.generate(prompts, params)
    elapsed = _time.perf_counter() - start
    generated = sum(len(r.tokens) for r in results)
    for r in results:
        shown = " ".join(str(t) for t in r.tokens[:12])
        more = "..." if len(r.tokens) > 12 else ""
        print(f"{r.request_id}: [{shown}{more}] ({len(r.tokens)} tokens, "
              f"{r.finish_reason})")
    stats = engine.stats()
    print(f"throughput: {generated} tokens in {elapsed * 1000:.0f} ms "
          f"= {generated / elapsed:.1f} tok/s across {len(results)} requests")
    print(f"kv arena:   {stats['kv_free_pages']:.0f} pages free, "
          f"{stats['evictions']:.0f} evictions, "
          f"{stats['decode_sessions']:.0f} decode sessions prepared")
    if args.prefix_cache:
        print(f"prefix:     {stats['prefix_hits']:.0f} hits, "
              f"{stats['prefix_hit_tokens']:.0f} tokens served from shared "
              f"KV, {stats['cow_materializes']:.0f} COW materializes")

    if args.selftest:
        failures = 0
        if args.temperature == 0.0:
            # Greedy: decode-with-cache must be bit-identical to a
            # token-by-token full recompute of the whole sequence.
            from ..core import Session
            from ..models import build_model

            for prompt, r in zip(prompts, results):
                toks = list(prompt)
                for _ in range(len(r.tokens)):
                    g = build_model(
                        "tiny_decoder", mode="full", seq_len=len(toks),
                        vocab=config.vocab, max_seq=config.max_seq,
                        d_model=config.d_model, heads=config.heads,
                        layers=config.layers, seed=config.seed,
                    )
                    out = Session(g).run({
                        "tokens": np.array([toks], np.int32),
                        "positions": np.arange(len(toks), dtype=np.int32)[None],
                    })
                    toks.append(int(np.argmax(out["logits"][0, -1])))
                if toks[len(prompt):] != r.tokens:
                    failures += 1
                    print(f"selftest FAILED: {r.request_id} diverges from "
                          f"full recompute", file=sys.stderr)
            mode = "bit-identical vs full recompute"
        else:
            # Sampled: a fresh engine must reproduce every token stream.
            replay = GenerationEngine(GenerationConfig(
                max_seq=args.max_seq, d_model=args.d_model, heads=args.heads,
                layers=args.layers, seed=args.seed, max_batch=args.batch,
                page_tokens=args.page_tokens,
            )).generate(prompts, params)
            for a, b in zip(results, replay):
                if a.tokens != b.tokens:
                    failures += 1
                    print(f"selftest FAILED: {a.request_id} not reproducible",
                          file=sys.stderr)
            mode = "reproducible under reseeded replay"
        if failures:
            return 1
        print(f"selftest:   ok — {len(results)} generations {mode}")

    if tracer is not None:
        from ..obs import save_chrome_trace

        save_chrome_trace(tracer, args.trace)
        print(f"trace:      wrote {args.trace} ({len(tracer.spans)} spans)")
    return 0


def cmd_regress(args) -> int:
    """Bench-regression gate: newest BENCH record vs its own trajectory."""
    from ..obs.regress import check_trajectory

    rc = 0
    for path in args.files:
        report = check_trajectory(
            path, threshold=args.threshold, min_history=args.min_history
        )
        print(report.describe())
        if not report.ok:
            rc = 1
    return rc


def cmd_schemes(args) -> int:
    from ..core import select_graph_schemes

    graph = _load(args.model)
    decisions = select_graph_schemes(graph)
    print(f"{len(decisions)} convolutions:")
    for name, decision in decisions.items():
        extra = f" n={decision.winograd_n}" if decision.kind == "winograd" else ""
        print(f"  {name:24s} -> {decision.kind}{extra}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="summarize a .rmnn model")
    p.add_argument("model")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("build", help="build a zoo model into a .rmnn file")
    p.add_argument("model_name")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--input-size", type=int, default=224)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_build)

    p = sub.add_parser("lint", help="static-analysis report for a model")
    p.add_argument("model")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures (exit 1)")
    p.add_argument("--no-memcheck", action="store_true",
                   help="skip the memory-plan sanitizer")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("optimize", help="run the offline graph optimizer")
    p.add_argument("model")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--verify", action="store_true",
                   help="re-check structure, shapes and numerics after every pass")
    p.set_defaults(fn=cmd_optimize)

    p = sub.add_parser("quantize", help="post-training int8 quantization")
    p.add_argument("model", nargs="?", default=None)
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--calibration-batches", type=int, default=4)
    p.add_argument("--selftest", action="store_true",
                   help="check the int8 stack's contracts instead: "
                        "accuracy bound, bit-identical seeded replay of "
                        "quantized decode, and >=3x KV token capacity")
    p.set_defaults(fn=cmd_quantize)

    p = sub.add_parser("prune", help="global magnitude pruning")
    p.add_argument("model")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--sparsity", type=float, default=0.5)
    p.set_defaults(fn=cmd_prune)

    p = sub.add_parser("fp16", help="store weights as float16")
    p.add_argument("model")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_fp16)

    p = sub.add_parser("benchmark", help="time a model on this host")
    p.add_argument("model")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--repeats", type=int, default=10)
    p.add_argument("--profile", type=int, default=0, metavar="N",
                   help="also print the N slowest operators")
    p.set_defaults(fn=cmd_benchmark)

    p = sub.add_parser("trace", help="record a Chrome trace of pre-inference "
                                     "+ execution")
    p.add_argument("model")
    p.add_argument("-o", "--output", default="trace.json")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--runs", type=int, default=1)
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="print the K most expensive operators")
    p.add_argument("--no-parallel", action="store_true",
                   help="skip the parallel-branches session")
    p.add_argument("--waterfall", action="store_true",
                   help="also print a per-lane text waterfall")
    p.add_argument("--waterfall-min-ms", type=float, default=0.05)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("metrics", help="print the metrics snapshot for N runs")
    p.add_argument("model", nargs="?", default=None,
                   help=".rmnn model (default: a tiny request-tracked "
                        "generation workload that populates the SLO "
                        "histograms)")
    p.add_argument("--runs", type=int, default=10)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("-o", "--output", default=None,
                   help="also write the snapshot as JSON")
    p.add_argument("--sanitize", action="store_true",
                   help="run with the concurrency sanitizer live; the "
                        "snapshot then includes the sanitize.* counters")
    p.add_argument("--prom", action="store_true",
                   help="also export the registry in Prometheus text "
                        "exposition format")
    p.add_argument("--selftest", action="store_true",
                   help="re-parse the Prometheus export through the "
                        "validating parser (and require the SLO families "
                        "on the generation workload)")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("warm", help="populate the pre-inference cache")
    p.add_argument("model")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--cache-dir", default=None,
                   help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    p.set_defaults(fn=cmd_warm)

    p = sub.add_parser("serve", help="drive concurrent traffic through an engine")
    p.add_argument("model")
    p.add_argument("--requests", type=int, default=32)
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--pool", type=int, default=2)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--batch", type=int, default=0, metavar="N",
                   help="coalesce requests into micro-batches of up to N (0 = off)")
    p.add_argument("--batch-timeout-ms", type=float, default=2.0)
    p.add_argument("--cache-dir", default=None)
    p.add_argument("--no-cache", action="store_true",
                   help="skip the pre-inference cache entirely")
    p.add_argument("--selftest", action="store_true",
                   help="verify concurrent results against serial execution")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record serving + execution spans to a Chrome trace")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("cluster", help="multi-process router/worker serving "
                                       "tier (sharded, supervised, "
                                       "crash-tolerant)")
    p.add_argument("model", nargs="?", default=None,
                   help=".rmnn model (default: built-in chaos CNN)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--requests", type=int, default=32)
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--queue-depth", type=int, default=8,
                   help="per-worker admission bound (queued + in flight)")
    p.add_argument("--dwell-ms", type=float, default=2.0,
                   help="simulated per-request device dwell inside each "
                        "worker (models an accelerator-backed deployment)")
    p.add_argument("--selftest", action="store_true",
                   help="spawn workers, SIGKILL one, assert the supervisor "
                        "replaces it and serving stays bit-identical")
    p.add_argument("--prom", action="store_true",
                   help="also export the router registry in Prometheus "
                        "text exposition format")
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser("estimate", help="model latency on a phone (simulator)")
    p.add_argument("model")
    p.add_argument("--device", default="Mate20")
    p.add_argument("--engine", default="MNN")
    p.add_argument("--backend", default="cpu")
    p.add_argument("--threads", type=int, default=4)
    p.set_defaults(fn=cmd_estimate)

    p = sub.add_parser("devices", help="list the device catalog")
    p.set_defaults(fn=cmd_devices)

    p = sub.add_parser("chaos", help="seeded fault-injection self-test storm")
    p.add_argument("model", nargs="?", default=None,
                   help=".rmnn model (default: built-in chaos CNN)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", type=int, default=200,
                   help="keep storming until this many faults have fired")
    p.add_argument("--events", action="store_true",
                   help="also print the full injection sequence")
    p.add_argument("--sanitize", action="store_true",
                   help="storm with the race/lock-order/lifecycle "
                        "sanitizer live; any finding fails the storm")
    p.add_argument("--postmortem-dir", default=None, metavar="DIR",
                   help="attach a deterministic flight recorder: isolated "
                        "faults, KV OOMs and the deadline probe dump "
                        "replayable postmortem JSON into DIR")
    p.add_argument("--kv-dtype", default="float32",
                   choices=("float32", "int8"),
                   help="KV-cache storage dtype for the generation/prefix "
                        "phases (storm and gold alike)")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("regress", help="bench-regression gate over "
                                       "BENCH_*.json trajectories")
    p.add_argument("files", nargs="+", metavar="BENCH_JSON",
                   help="trajectory files (repro.bench appends one stamped "
                        "record per run)")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="tolerated relative regression before failing "
                        "(default 0.5 = 50%%)")
    p.add_argument("--min-history", type=int, default=1,
                   help="minimum comparable baseline runs; fewer skips the "
                        "gate with a note")
    p.set_defaults(fn=cmd_regress)

    p = sub.add_parser("sanitize", help="concurrency lint (C0xx) + sanitized "
                                        "dynamic self-check")
    p.add_argument("--root", default=None,
                   help="source tree to lint (default: the installed repro "
                        "package)")
    p.add_argument("--strict", action="store_true",
                   help="treat C0xx warnings as failures (exit 1)")
    p.add_argument("--static-only", action="store_true",
                   help="skip the sanitized dynamic storm")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", type=int, default=50,
                   help="fault budget for the sanitized dynamic storm")
    p.set_defaults(fn=cmd_sanitize)

    p = sub.add_parser("generate", help="continuous-batching autoregressive "
                                        "generation over the tiny decoder")
    p.add_argument("--prompts", type=int, default=4,
                   help="number of random prompts to generate for")
    p.add_argument("--max-tokens", type=int, default=12)
    p.add_argument("--max-seq", type=int, default=48)
    p.add_argument("--d-model", type=int, default=32)
    p.add_argument("--heads", type=int, default=2)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--batch", type=int, default=4,
                   help="continuous-batch seat count")
    p.add_argument("--page-tokens", type=int, default=8,
                   help="KV-cache page granule in tokens")
    p.add_argument("--temperature", type=float, default=0.0,
                   help="0 = greedy (the bit-identity selftest mode)")
    p.add_argument("--top-k", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prefix-cache", action="store_true",
                   help="serve shared prompt prefixes copy-on-write from "
                        "retired KV slabs (tokens stay bit-identical)")
    p.add_argument("--shared-prefix", type=int, default=0, metavar="N",
                   help="prepend one shared random N-token prefix to every "
                        "prompt (makes --prefix-cache hits observable)")
    p.add_argument("--selftest", action="store_true",
                   help="greedy: verify bit-identity vs full recompute; "
                        "sampled: verify reseeded replay reproduces tokens")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record prefill/decode/batch spans to a Chrome trace")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("schemes", help="show per-conv scheme decisions")
    p.add_argument("model")
    p.set_defaults(fn=cmd_schemes)

    p = sub.add_parser("autotune", help="measure conv schemes on this host")
    p.add_argument("model")
    p.add_argument("--repeats", type=int, default=2)
    p.set_defaults(fn=cmd_autotune)

    p = sub.add_parser("dot", help="export the graph as Graphviz dot")
    p.add_argument("model")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--schemes", action="store_true",
                   help="annotate convs with their selected schemes")
    p.set_defaults(fn=cmd_dot)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, ValueError, KeyError) as exc:
        # Structurally invalid models carry structured diagnostics (see
        # repro.analysis); print them rule-tagged instead of a traceback.
        diagnostics = getattr(exc, "diagnostics", None)
        if diagnostics:
            from ..analysis import format_diagnostics, summarize

            print(format_diagnostics(diagnostics), file=sys.stderr)
            print(f"error: {summarize(diagnostics)}", file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
