"""User-convenience command-line tools (`python -m repro.tools.cli`).

The CLI entry point is intentionally not imported here so that
``python -m repro.tools.cli`` does not trigger the double-import warning;
use ``from repro.tools.cli import main`` programmatically.
"""

__all__: list = []
