"""repro — a pure-Python reproduction of MNN (MLSys 2020).

Public API tour::

    from repro import models, Session, SessionConfig
    graph = models.mobilenet_v1(input_size=224)
    session = Session(graph)                       # pre-inference happens here
    outputs = session.run({"data": image})         # pure compute

Subpackages:

* :mod:`repro.ir`         — tensors, operators, graphs, the .rmnn format
* :mod:`repro.converter`  — frontends, graph optimizer, int8 quantization
* :mod:`repro.kernels`    — Winograd / Strassen / im2col / NC4HW4 kernels
* :mod:`repro.core`       — pre-inference, cost model, memory planner, sessions
* :mod:`repro.backends`   — the Backend abstraction + CPU & simulated GPUs
* :mod:`repro.devices`    — phone capability catalog (paper Appendix C)
* :mod:`repro.models`     — MobileNet/SqueezeNet/ResNet/Inception zoo
* :mod:`repro.baselines`  — NCNN/MACE/TF-Lite/CoreML/TVM-style engines
* :mod:`repro.sim`        — virtual clock + cross-device latency estimation
* :mod:`repro.bench`      — timing harness, tables, MLPerf-style loadgen
"""

from . import backends, baselines, bench, converter, core, devices, ir, kernels, models, sim
from .core import Session, SessionConfig
from .ir import Graph, GraphBuilder, load_model, save_model

__version__ = "1.0.0"

__all__ = [
    "backends",
    "baselines",
    "bench",
    "converter",
    "core",
    "devices",
    "ir",
    "kernels",
    "models",
    "sim",
    "Session",
    "SessionConfig",
    "Graph",
    "GraphBuilder",
    "load_model",
    "save_model",
    "__version__",
]
