#!/usr/bin/env python3
"""Engine/device comparison — a miniature of the paper's Figures 7-9.

Uses the latency simulator to predict how each design paradigm (manual,
library, automated, semi-automated search) handles three very different
networks, including Inception-v3's 1x7/7x1 trap for case-by-case engines.

Run:  python examples/engine_comparison.py
"""

from repro.baselines import ENGINES, TuningCostModel, analyze_kernel_coverage
from repro.bench import format_table
from repro.devices import get_device
from repro.models import build_model
from repro.sim import estimate_latency


def main():
    device = get_device("Mate20")
    networks = ["mobilenet_v1", "resnet18", "inception_v3"]
    engines = ["NCNN", "MACE", "TF-Lite", "TVM", "MNN"]

    rows = []
    graphs = {name: build_model(name) for name in networks}
    for name in networks:
        row = [name]
        for engine in engines:
            est = estimate_latency(graphs[name], ENGINES[engine], device, "cpu", 4)
            row.append(round(est.total_ms, 1))
        rows.append(row)
    print(format_table(["network"] + engines, rows,
                       title=f"simulated CPU x4 inference on {device.name} (ms)"))

    # why NCNN collapses on Inception-v3:
    coverage = analyze_kernel_coverage(graphs["inception_v3"], ENGINES["NCNN"])
    print(f"\nNCNN kernel-table coverage on Inception-v3: "
          f"{coverage.coverage * 100:.0f}% of convs, "
          f"{coverage.fallback_mul_share * 100:.0f}% of conv MULs on the "
          f"naive fallback (kernels {sorted(coverage.fallback_kernels)})")

    est = estimate_latency(graphs["inception_v3"], ENGINES["NCNN"], device, "cpu", 4)
    print(f"-> {est.fallback_share() * 100:.0f}% of NCNN's runtime is fallback code")
    print("slowest NCNN ops:")
    for op in est.slowest(3):
        print(f"   {op.node:32s} {op.op_type:8s} {op.ms:7.1f} ms ({op.algorithm})")

    # and what TVM's speed costs at deployment time:
    cost = TuningCostModel()
    total_s = sum(
        cost.tuning_seconds(g, trials=10) + cost.compile_seconds(g, trials=10)
        for g in graphs.values()
    )
    print(f"\nTVM-style deployment for these 3 models on ONE device: "
          f"{total_s / 3600:.1f} hours of tuning+compiling")
    print("MNN's equivalent: scheme search at session creation, milliseconds.")


if __name__ == "__main__":
    main()
