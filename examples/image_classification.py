#!/usr/bin/env python3
"""Image classification with MobileNet-v1 — the paper's flagship workload.

Demonstrates what pre-inference buys on a real network: the per-layer
scheme decisions (sliding window / Winograd / Strassen-GEMM), the memory
arena, and stable repeated-inference latency.

Run:  python examples/image_classification.py
"""

import numpy as np

from repro import Session, SessionConfig
from repro.bench import time_callable
from repro.converter import optimize
from repro.models import mobilenet_v1


def synthetic_image(size=160, seed=0):
    """A deterministic fake RGB image, ImageNet-style normalized."""
    rng = np.random.default_rng(seed)
    image = rng.uniform(0, 255, (1, 3, size, size)).astype(np.float32)
    mean = np.array([123.7, 116.3, 103.5], np.float32).reshape(1, 3, 1, 1)
    return (image - mean) / 58.4


def main():
    size = 160  # mobile-typical resolution; use 224 for the paper's setting
    graph = optimize(mobilenet_v1(input_size=size))
    session = Session(graph, SessionConfig(backend="cpu", threads=4))

    print(f"MobileNet-v1 @ {size}x{size}: {len(graph.nodes)} ops after fusion")
    print(f"scheme mix: {session.scheme_summary()}")

    # Show the actual per-conv decisions for the first few layers.
    print("\nper-layer scheme decisions (first 6 convolutions):")
    shown = 0
    for node in graph.toposort():
        decision = session.schemes.get(node.name)
        if decision is None:
            continue
        desc = graph.desc(node.outputs[0])
        print(f"  {node.name:14s} k={node.attrs['kernel']} out={desc.shape}"
              f"  -> {decision.kind}"
              + (f" (n={decision.winograd_n})" if decision.kind == "winograd" else ""))
        shown += 1
        if shown == 6:
            break

    plan = session.memory_plan
    print(f"\nactivation arena: {plan.arena_bytes / 2**20:.1f} MiB "
          f"(naive: {plan.total_tensor_bytes / 2**20:.1f} MiB, "
          f"{plan.reuse_ratio:.1f}x reuse)")

    feed = {"data": synthetic_image(size)}
    probs = session.run(feed)[graph.outputs[0]]
    top5 = np.argsort(probs[0])[::-1][:5]
    print("\ntop-5 predictions (random weights, so arbitrary classes):")
    for rank, cls in enumerate(top5, 1):
        print(f"  {rank}. class {int(cls):4d}  p={float(probs[0, cls]):.4f}")

    timing = time_callable(lambda: session.run(feed), repeats=10, warmup=1)
    print(f"\nlatency over 10 runs: median {timing.median_ms:.1f} ms, "
          f"min {timing.min_ms:.1f} ms, std {timing.std_ms:.2f} ms")


if __name__ == "__main__":
    main()
