#!/usr/bin/env python3
"""Post-training int8 quantization — the converter's model compressor.

Calibrates on synthetic data, quantizes conv weights to per-channel int8,
and compares model size, output drift and top-1 agreement against float.

Run:  python examples/quantize_model.py
"""

import numpy as np

from repro import Session
from repro.converter import optimize, quantize_model, weight_bytes
from repro.core.reference import execute_reference
from repro.models import mobilenet_v1


def main():
    rng = np.random.default_rng(5)
    size = 96
    graph = optimize(mobilenet_v1(input_size=size, width=0.5))
    print(f"float model: {len(graph.nodes)} ops, "
          f"{weight_bytes(graph) / 2**20:.2f} MiB of weights")

    calibration = [
        {"data": rng.standard_normal((1, 3, size, size)).astype(np.float32)}
        for _ in range(8)
    ]
    quantized = quantize_model(graph, calibration)
    print(f"int8 model: {weight_bytes(quantized) / 2**20:.2f} MiB of weights "
          f"({weight_bytes(graph) / weight_bytes(quantized):.2f}x smaller)")

    n_int8 = sum(1 for v in quantized.constants.values() if v.dtype == np.int8)
    print(f"{n_int8} weight tensors quantized to int8 (per-output-channel scales)")

    # accuracy drift on held-out inputs
    agree, drifts = 0, []
    trials = 20
    for _ in range(trials):
        feed = {"data": rng.standard_normal((1, 3, size, size)).astype(np.float32)}
        p_float = execute_reference(graph, feed)[graph.outputs[0]]
        p_int8 = execute_reference(quantized, feed)[quantized.outputs[0]]
        drifts.append(float(np.abs(p_float - p_int8).max()))
        agree += int(p_float.argmax() == p_int8.argmax())
    print(f"top-1 agreement with float: {agree}/{trials}")
    print(f"max softmax drift: {max(drifts):.4f} (mean {np.mean(drifts):.4f})")

    # the quantized model runs through the normal engine unchanged
    session = Session(quantized)
    out = session.run(calibration[0])[quantized.outputs[0]]
    print(f"quantized session inference OK: output sums to {out.sum():.4f}")


if __name__ == "__main__":
    main()
