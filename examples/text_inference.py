#!/usr/bin/env python3
"""Sequence models: Transformer and LSTM inference (universality beyond CNNs).

The paper's Figure 1 lists RNN/LSTM/Transformer among the model families a
universal engine must handle.  This example runs both through the same
engine pipeline as the CNNs — pre-inference, hybrid scheduling, profiling.

Run:  python examples/text_inference.py
"""

import numpy as np

from repro import Session, SessionConfig
from repro.core import node_muls
from repro.devices import get_device
from repro.models import lstm_classifier, tiny_transformer


def main():
    rng = np.random.default_rng(3)

    # --- Transformer encoder ------------------------------------------------
    net = tiny_transformer(vocab=1000, seq_len=64, d_model=128, heads=4,
                           layers=2, classes=10)
    session = Session(net)
    tokens = rng.integers(0, 1000, (1, 64)).astype(np.int32)
    probs = session.run({"tokens": tokens})[net.outputs[0]]
    print(f"transformer: {len(net.nodes)} ops, "
          f"{sum(node_muls(n, net) for n in net.nodes) / 1e6:.1f} M MULs, "
          f"prediction class {int(probs.argmax())} (p={probs.max():.3f})")

    # per-op profile: attention matmuls should dominate
    _, profile = session.run_profiled({"tokens": tokens})
    profile.sort(key=lambda p: -p.wall_ms)
    print("slowest transformer ops:")
    for p in profile[:4]:
        print(f"  {p.node:20s} {p.op_type:12s} {p.wall_ms:6.2f} ms")

    # hybrid scheduling: sequence ops (LayerNorm/Gather/GELU) are CPU-only,
    # so a GPU session splits the graph automatically.
    gpu = Session(net, SessionConfig(backend="vulkan", device=get_device("MI6")))
    print(f"on a simulated MI6 Vulkan session, placement = {gpu.placement_summary()}")
    gpu_probs = gpu.run({"tokens": tokens})[net.outputs[0]]
    print(f"hybrid output drift vs CPU: {np.abs(gpu_probs - probs).max():.2e}")

    # --- LSTM classifier -----------------------------------------------------
    lstm = lstm_classifier(vocab=1000, seq_len=64, d_model=96, hidden=128,
                           classes=5)
    lstm_session = Session(lstm)
    out = lstm_session.run({"tokens": tokens})[lstm.outputs[0]]
    lstm_node = next(n for n in lstm.nodes if n.op_type == "LSTM")
    print(f"\nlstm classifier: {node_muls(lstm_node, lstm) / 1e6:.1f} M MULs in "
          f"the recurrent cell, prediction class {int(out.argmax())}")
    print(f"last run: {lstm_session.last_run.wall_ms:.1f} ms")


if __name__ == "__main__":
    main()
