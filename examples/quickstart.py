#!/usr/bin/env python3
"""Quickstart: build a network, optimize it, save/load it, run inference.

This walks the full MNN-style pipeline on a small CNN:

    build graph -> offline optimize -> serialize (.rmnn) -> load
          -> pre-inference (Session) -> run

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import GraphBuilder, Session, SessionConfig, load_model, save_model
from repro.converter import optimize


def build_tiny_cnn():
    """A LeNet-ish CNN over 32x32 RGB inputs."""
    b = GraphBuilder("tiny_cnn", seed=7)
    x = b.input("image", (1, 3, 32, 32))
    x = b.conv(x, oc=16, kernel=3, pad_mode="same", bias=False)
    x = b.batch_norm(x)
    x = b.relu(x)
    x = b.max_pool(x, 2)
    x = b.conv(x, oc=32, kernel=3, pad_mode="same", bias=False)
    x = b.batch_norm(x)
    x = b.relu(x)
    x = b.max_pool(x, 2)
    x = b.conv(x, oc=64, kernel=1)          # 1x1 -> GEMM (Strassen-eligible)
    x = b.fc(b.global_avg_pool(x), units=10)
    b.output(b.softmax(x))
    return b.finish()


def main():
    graph = build_tiny_cnn()
    print(f"built {graph.name!r}: {len(graph.nodes)} ops, "
          f"{len(graph.constants)} weight tensors")

    # Offline conversion stage: fuse BN/ReLU into convs, fold constants.
    before = len(graph.nodes)
    optimize(graph)
    print(f"offline optimizer: {before} -> {len(graph.nodes)} ops "
          f"(BN + activations fused into convolutions)")

    # The .mnn-equivalent single-file model format.
    with tempfile.NamedTemporaryFile(suffix=".rmnn") as fh:
        save_model(graph, fh.name)
        graph = load_model(fh.name)
        print(f"serialized round-trip through {fh.name}")

    # Pre-inference: scheme selection + memory planning happen here, once.
    session = Session(graph, SessionConfig(backend="cpu", threads=4))
    print(f"conv schemes selected: {session.scheme_summary()}")
    plan = session.memory_plan
    print(f"memory plan: {plan.total_tensor_bytes / 1024:.0f} KiB of activations "
          f"packed into a {plan.arena_bytes / 1024:.0f} KiB arena "
          f"({plan.reuse_ratio:.1f}x reuse)")

    # Inference is pure compute.
    image = np.random.default_rng(0).standard_normal((1, 3, 32, 32)).astype(np.float32)
    probs = session.run({"image": image})[graph.outputs[0]]
    top = np.argsort(probs[0])[::-1][:3]
    print("top-3 classes:", [(int(i), float(probs[0, i])) for i in top])
    print(f"last run: {session.last_run.wall_ms:.2f} ms wall")


if __name__ == "__main__":
    main()
