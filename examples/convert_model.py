#!/usr/bin/env python3
"""Model conversion from external formats (paper Figure 2, left half).

Builds the same small network in an ONNX-style dict and a Caffe-style
layer list, converts both through the respective frontends, runs the
offline optimizer, and verifies the engines agree numerically.

Run:  python examples/convert_model.py
"""

import numpy as np

from repro import Session
from repro.converter import convert_caffe_like, convert_onnx_like, optimize
from repro.ir import dumps

RNG = np.random.default_rng(13)

W1 = RNG.standard_normal((8, 3, 3, 3)).astype(np.float32) * 0.2
B1 = RNG.standard_normal(8).astype(np.float32) * 0.02
FC_W = RNG.standard_normal((10, 8)).astype(np.float32) * 0.3


def onnx_style_model():
    return {
        "name": "onnx_net",
        "inputs": [{"name": "x", "shape": [1, 3, 24, 24]}],
        "outputs": ["prob"],
        "initializers": {"w1": W1, "b1": B1, "fc_w": FC_W},
        "nodes": [
            {"op_type": "Conv", "inputs": ["x", "w1", "b1"], "outputs": ["c1"],
             "attrs": {"kernel_shape": [3, 3], "pads": [1, 1, 1, 1]}},
            {"op_type": "Relu", "inputs": ["c1"], "outputs": ["r1"]},
            {"op_type": "GlobalAveragePool", "inputs": ["r1"], "outputs": ["g"]},
            {"op_type": "Flatten", "inputs": ["g"], "outputs": ["f"]},
            {"op_type": "Gemm", "inputs": ["f", "fc_w"], "outputs": ["fc"]},
            {"op_type": "Softmax", "inputs": ["fc"], "outputs": ["prob"]},
        ],
    }


def caffe_style_model():
    return {
        "name": "caffe_net",
        "inputs": [{"name": "x", "shape": [1, 3, 24, 24]}],
        "layers": [
            {"name": "conv1", "type": "Convolution", "bottom": ["x"],
             "top": ["c1"], "kernel_size": 3, "pad": 1},
            {"name": "relu1", "type": "ReLU", "bottom": ["c1"], "top": ["r1"]},
            {"name": "gap", "type": "Pooling", "bottom": ["r1"], "top": ["g"],
             "pool": "AVE", "global_pooling": True},
            {"name": "fc", "type": "InnerProduct", "bottom": ["g"], "top": ["fc"]},
            {"name": "prob", "type": "Softmax", "bottom": ["fc"], "top": ["prob"]},
        ],
        "blobs": {"conv1": [W1, B1], "fc": [FC_W]},
    }


def main():
    onnx_graph = convert_onnx_like(onnx_style_model())
    caffe_graph = convert_caffe_like(caffe_style_model())
    print(f"ONNX-style frontend:  {len(onnx_graph.nodes)} ops")
    print(f"Caffe-style frontend: {len(caffe_graph.nodes)} ops")

    for graph in (onnx_graph, caffe_graph):
        before = len(graph.nodes)
        optimize(graph)
        print(f"  optimizer on {graph.name!r}: {before} -> {len(graph.nodes)} ops")

    feed = {"x": RNG.standard_normal((1, 3, 24, 24)).astype(np.float32)}
    out_onnx = Session(onnx_graph).run(feed)["prob"]
    out_caffe = Session(caffe_graph).run(feed)["prob"]
    print(f"max |onnx - caffe| output delta: {np.abs(out_onnx - out_caffe).max():.2e}")

    blob = dumps(onnx_graph)
    print(f"serialized optimized model: {len(blob) / 1024:.1f} KiB (.rmnn)")


if __name__ == "__main__":
    main()
