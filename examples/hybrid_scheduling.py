#!/usr/bin/env python3
"""Hybrid CPU/GPU scheduling and backend auto-selection (paper Section 3.4).

Runs the same network on a simulated Xiaomi MI6 under every backend the
device exposes, shows how ops split between a sparse GPU backend and the
CPU fallback (with automatic copies), and lets Eq. 4 pick the winner.

Run:  python examples/hybrid_scheduling.py
"""

import numpy as np

from repro import Session, SessionConfig
from repro.converter import optimize
from repro.devices import get_device
from repro.models import squeezenet_v1_1


def virtual_ms(session, feed):
    session.run(feed)  # warm-up
    before = session.clock.now_ms
    session.run(feed)
    return session.clock.now_ms - before


def main():
    device = get_device("MI6")
    print(f"device: {device.name} — CPU {device.soc} "
          f"({max(device.cpu_core_ghz)} GHz x{len(device.cpu_core_ghz)}), "
          f"GPU {device.gpu} ({device.gpu_flops() / 1e9:.1f} GFLOPS)")

    graph = optimize(squeezenet_v1_1(input_size=128))
    feed = {"data": np.random.default_rng(1).standard_normal(
        (1, 3, 128, 128)).astype(np.float32)}

    print(f"\nSqueezeNet-v1.1 on every backend of {device.name} "
          f"(virtual clock, Appendix-C cost model):")
    reference = None
    for backend in ("sim_cpu", "opencl", "opengl", "vulkan"):
        session = Session(graph, SessionConfig(backend=backend, device=device, threads=4))
        out = list(session.run(feed).values())[0]
        if reference is None:
            reference = out
        drift = float(np.abs(out - reference).max())
        placement = session.placement_summary()
        ms = virtual_ms(session, feed)
        print(f"  {backend:8s}: {ms:6.1f} ms   placement={placement}   "
              f"copies/run={session.last_run.copies}   |delta|={drift:.1e}")

    auto = Session(graph, SessionConfig(auto_backend=True, device=device, threads=4))
    print(f"\nEq. 4 auto-selection picked: {auto.backend_kind} "
          f"({virtual_ms(auto, feed):.1f} ms)")

    # The OpenGL backend supports only a few op types (Table 4), so the
    # session transparently splits the graph:
    sparse = Session(graph, SessionConfig(backend="opengl", device=device))
    sparse.run(feed)
    print(f"\nhybrid split on OpenGL: {sparse.placement_summary()} — "
          f"{sparse.last_run.copies} cross-backend copies "
          f"({sparse.last_run.copy_bytes / 1024:.0f} KiB) per inference, "
          f"results bit-compatible with CPU")


if __name__ == "__main__":
    main()
