#!/usr/bin/env python3
"""Integrating a new accelerator backend (paper Section 3.4).

The paper claims the Backend abstraction is "scalable enough for users to
integrate new backends such as NPU, FPGA".  This example does exactly
that: ~40 lines subclassing the public `Backend`/`Execution` ABCs give a
fictional NPU that accelerates conv-family ops at a modeled 200 GFLOPS —
and the Session transparently hybrid-schedules everything else onto the
CPU, with identical numerics.

Run:  python examples/custom_backend.py
"""

import numpy as np

from repro import Session, SessionConfig
from repro.backends import Backend, BackendError, Execution, build_runner
from repro.converter import optimize
from repro.models import squeezenet_v1_1
from repro.sim import VirtualClock

NPU_OPS = {"Conv2D", "DepthwiseConv2D", "FullyConnected", "MatMul"}
NPU_FLOPS = 200e9
NPU_DISPATCH_MS = 0.02


class NpuExecution(Execution):
    def __init__(self, backend, node, runner):
        super().__init__(backend, node)
        self.runner = runner

    def run(self, inputs):
        self.backend.clock.advance(
            self.runner.muls / NPU_FLOPS * 1000.0 + NPU_DISPATCH_MS
        )
        return self.runner.fn(inputs)


class NpuBackend(Backend):
    """Real numerics, modeled NPU timing — that's all a backend needs."""

    forward_type = "npu"

    def __init__(self):
        super().__init__()
        self.clock = VirtualClock()

    def supports(self, op_type):
        return op_type in NPU_OPS

    def on_create(self, node, graph, scheme=None):
        if not self.supports(node.op_type):
            raise BackendError(f"npu: unsupported op {node.op_type!r}")
        return NpuExecution(self, node, build_runner(node, graph, scheme))


def main():
    graph = optimize(squeezenet_v1_1(input_size=128, classes=100))
    feed = {"data": np.random.default_rng(0).standard_normal(
        (1, 3, 128, 128)).astype(np.float32)}

    cpu = Session(graph)
    want = list(cpu.run(feed).values())[0]

    npu = NpuBackend()
    session = Session(graph, SessionConfig(backend=npu))
    got = list(session.run(feed).values())[0]

    print(f"placement: {session.placement_summary()}")
    print(f"modeled NPU time: {npu.clock.now_ms:.2f} ms "
          f"(vs {cpu.last_run.wall_ms:.1f} ms real host CPU)")
    print(f"max |NPU - CPU| output delta: {np.abs(got - want).max():.2e}")

    _, profile = session.run_profiled(feed)
    on_npu = sum(1 for p in profile if p.backend == "npu")
    print(f"profiler: {on_npu}/{len(profile)} ops attributed to the NPU")


if __name__ == "__main__":
    main()
