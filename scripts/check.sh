#!/usr/bin/env bash
# Pre-merge gate: every correctness tool in the repo, end to end.
#
#   ./scripts/check.sh
#
# Ten stages, each of which must pass:
#
#   1. Static concurrency lint (rule family C0xx) over src/repro itself,
#      in strict mode — warnings fail too.
#   2. Strict graph lint + memory-plan sanitizer over every registered
#      zoo model (each one is built fresh, then linted).
#   3. The lint_self and sanitize pytest markers: the repo lints its own
#      fixtures, the race / lock-order / lifecycle detectors prove they
#      both catch seeded defects and come up clean on real code, and the
#      prefix-cache bit-identity properties run under the sanitizer.
#   4. A 50-fault sanitized chaos storm: fault injection with the
#      dynamic sanitizer live across serving, batching, generation and
#      COW prefix sharing — any race, lock cycle or leaked slab fails
#      the storm.
#   5. The cold-start guard: on the serving bench graph, an incremental
#      (lazy-prepare) cold session must come up in under 2x the warm
#      (artifact-replay) time — the regression that motivated the
#      incremental-prepare work.
#   6. Prometheus self-test: a tracked generation workload is exported
#      as text exposition and re-ingested by the validating parser; the
#      SLO and resource families must all be present and well-formed.
#   7. Request-timeline overhead guard: disabled request tracking must
#      cost under 5% of a small-model run.
#   8. Bench-regression gate: a micro-benchmark writes two consecutive
#      BENCH records into a scratch trajectory and `cli regress` must
#      pass it — exercising the stamp, headline extraction and the
#      noise threshold end to end.
#   9. Cluster supervision self-test: spawn the multi-process serving
#      tier, SIGKILL a worker mid-run, and require the supervisor to
#      replace it with the post-recovery response bit-identical to the
#      pre-kill gold.
#  10. Quantization self-test: per-channel int8 weights must hold the
#      logits max-abs-error contract and pass the Q-rule lint, seeded
#      replay over int8 weights + int8 KV must be bit-identical, and
#      the int8 KV layout must fit >= 3x the tokens per arena byte.
#
# Total runtime is a few minutes on a laptop.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== [1/10] static concurrency lint (C0xx, strict) =="
python -m repro.tools.cli sanitize --static-only --strict

echo
echo "== [2/10] strict model lint over the registered zoo =="
models=$(python -c "from repro.models import MODEL_REGISTRY; print(' '.join(sorted(MODEL_REGISTRY)))")
for name in $models; do
    echo "-- $name"
    python -m repro.tools.cli build "$name" -o "$tmpdir/$name.rmnn" >/dev/null
    python -m repro.tools.cli lint --strict "$tmpdir/$name.rmnn"
done

echo
echo "== [3/10] lint_self + sanitize pytest markers =="
python -m pytest -q -m "lint_self or sanitize"

echo
echo "== [4/10] 50-fault sanitized chaos storm =="
python -m repro.tools.cli chaos --faults 50 --sanitize

echo
echo "== [5/10] cold-start guard (incremental cold < 2x warm) =="
python - <<'PY'
from repro.converter import optimize
from repro.core import SessionConfig
from repro.core.schemes import clear_scheme_memo
from repro.kernels.winograd import clear_transform_cache
from repro.models import squeezenet_v1_1
from repro.serving import Engine, EngineConfig

import tempfile

net = optimize(squeezenet_v1_1(input_size=96, classes=10))
with tempfile.TemporaryDirectory() as cache_dir:
    clear_transform_cache(); clear_scheme_memo()
    seeder = Engine(net, EngineConfig(pool_size=1, cache_dir=cache_dir))

    clear_transform_cache(); clear_scheme_memo()
    warm = Engine(net, EngineConfig(pool_size=1, cache_dir=cache_dir))
    warm_ms = warm.stats.warm_prepare_ms[0]

with tempfile.TemporaryDirectory() as cold_dir:
    clear_transform_cache(); clear_scheme_memo()
    cold = Engine(net, EngineConfig(
        pool_size=1, cache_dir=cold_dir,
        session=SessionConfig(lazy_prepare=True),
    ))
    cold_ms = cold.stats.cold_prepare_ms[0]

print(f"incremental cold prepare: {cold_ms:.1f} ms, warm: {warm_ms:.1f} ms "
      f"(ratio {cold_ms / max(warm_ms, 1e-9):.2f}x, budget 2x)")
assert cold_ms < 2.0 * warm_ms, (
    f"cold-start regression: incremental cold prepare {cold_ms:.1f} ms is "
    f">= 2x the warm {warm_ms:.1f} ms"
)
PY

echo
echo "== [6/10] prometheus export self-test =="
python -m repro.tools.cli metrics --prom --selftest >/dev/null
python -m repro.tools.cli metrics --prom --selftest | tail -n 1

echo
echo "== [7/10] request-timeline overhead guard (<5% disabled) =="
python -m pytest -q tests/test_obs_requests.py -k overhead

echo
echo "== [8/10] bench-regression gate (two-run trajectory) =="
export REPRO_BENCH_DIR="$tmpdir/bench"
python -m pytest -q benchmarks/bench_prefix_cache.py
python -m pytest -q benchmarks/bench_prefix_cache.py
python -m repro.tools.cli regress "$REPRO_BENCH_DIR"/BENCH_*.json
unset REPRO_BENCH_DIR

echo
echo "== [9/10] cluster supervision self-test (kill a worker, stay bit-identical) =="
python -m repro.tools.cli cluster --selftest

echo
echo "== [10/10] quantization self-test (accuracy, determinism, capacity) =="
python -m repro.tools.cli quantize --selftest

echo
echo "check.sh: all gates passed"
