#!/usr/bin/env bash
# Pre-merge gate: every correctness tool in the repo, end to end.
#
#   ./scripts/check.sh
#
# Four stages, each of which must pass:
#
#   1. Static concurrency lint (rule family C0xx) over src/repro itself,
#      in strict mode — warnings fail too.
#   2. Strict graph lint + memory-plan sanitizer over every registered
#      zoo model (each one is built fresh, then linted).
#   3. The lint_self and sanitize pytest markers: the repo lints its own
#      fixtures, and the race / lock-order / lifecycle detectors prove
#      they both catch seeded defects and come up clean on real code.
#   4. A 50-fault sanitized chaos storm: fault injection with the
#      dynamic sanitizer live across serving, batching and generation —
#      any race, lock cycle or leaked slab fails the storm.
#
# Total runtime is a few minutes on a laptop.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "== [1/4] static concurrency lint (C0xx, strict) =="
python -m repro.tools.cli sanitize --static-only --strict

echo
echo "== [2/4] strict model lint over the registered zoo =="
models=$(python -c "from repro.models import MODEL_REGISTRY; print(' '.join(sorted(MODEL_REGISTRY)))")
for name in $models; do
    echo "-- $name"
    python -m repro.tools.cli build "$name" -o "$tmpdir/$name.rmnn" >/dev/null
    python -m repro.tools.cli lint --strict "$tmpdir/$name.rmnn"
done

echo
echo "== [3/4] lint_self + sanitize pytest markers =="
python -m pytest -q -m "lint_self or sanitize"

echo
echo "== [4/4] 50-fault sanitized chaos storm =="
python -m repro.tools.cli chaos --faults 50 --sanitize

echo
echo "check.sh: all gates passed"
