"""Seeded sampling, the continuous-batching scheduler, the generation
engine front door, and the ``cli generate`` subcommand.

Includes the PR's acceptance test: a >= 32-token greedy generation whose
every token is bit-identical to a token-by-token full-sequence recompute
on exact-length graphs."""

import numpy as np
import pytest

from repro.core import Session
from repro.faults import FaultPlan, FaultRule
from repro.genai import (
    GenerationConfig,
    GenerationEngine,
    GenRequest,
    GenResult,
    Sampler,
    SamplingParams,
    greedy,
)
from repro.models import tiny_decoder
from repro.obs import Tracer
from repro.obs.metrics import MetricsRegistry, set_metrics

pytestmark = pytest.mark.genai

RNG = np.random.default_rng(13)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


SMALL = dict(vocab=48, max_seq=24, d_model=16, heads=2, layers=1, seed=4,
             max_batch=2, page_tokens=4, capacity_tokens=64, smallest_bucket=8)


def small_engine(**overrides):
    cfg = dict(SMALL)
    cfg.update(overrides)
    return GenerationEngine(GenerationConfig(**cfg))


def prompts(n, lo=2, hi=7, vocab=48, seed=17):
    rng = np.random.default_rng(seed)
    return [[int(t) for t in rng.integers(0, vocab, size=int(ln))]
            for ln in rng.integers(lo, hi, size=n)]


class TestSampler:
    def test_greedy_is_argmax(self):
        logits = np.array([0.1, 3.0, -2.0, 3.0], np.float32)
        assert greedy(logits) == 1  # first max wins deterministically
        s = Sampler(SamplingParams(temperature=0.0))
        assert s.sample(logits) == 1

    def test_seeded_draws_replay(self):
        logits = RNG.standard_normal(32).astype(np.float32)
        params = SamplingParams(temperature=0.8, top_k=8, seed=42)
        a = [Sampler(params).sample(logits) for _ in range(5)]
        b = [Sampler(params).sample(logits) for _ in range(5)]
        assert a == b
        stream = Sampler(params)
        seq = [stream.sample(logits) for _ in range(20)]
        assert len(set(seq)) > 1  # actually stochastic within a stream

    def test_top_k_restricts_support(self):
        logits = np.arange(16, dtype=np.float32)
        s = Sampler(SamplingParams(temperature=1.0, top_k=3, seed=0))
        draws = {s.sample(logits) for _ in range(200)}
        assert draws <= {13, 14, 15}

    def test_different_seeds_diverge(self):
        logits = RNG.standard_normal(64).astype(np.float32)
        a = [Sampler(SamplingParams(temperature=1.5, seed=1)).sample(logits)
             for _ in range(1)]
        seqs = set()
        for seed in range(8):
            s = Sampler(SamplingParams(temperature=1.5, seed=seed))
            seqs.add(tuple(s.sample(logits) for _ in range(6)))
        assert len(seqs) > 1

    def test_param_validation(self):
        with pytest.raises(ValueError, match="max_tokens"):
            SamplingParams(max_tokens=0)
        with pytest.raises(ValueError, match="temperature"):
            SamplingParams(temperature=-0.1)
        with pytest.raises(ValueError, match="top_k"):
            SamplingParams(top_k=-1)

    def test_stop_tokens(self):
        s = Sampler(SamplingParams(stop_tokens=(7,)))
        assert s.is_stop(7) and not s.is_stop(8)


class TestAcceptance:
    def test_decode_bit_identical_to_full_recompute_32_tokens(self):
        """The headline criterion: >= 32 greedy tokens, every one bitwise
        equal to an exact-length full recompute (no padding, no cache)."""
        engine = small_engine(max_seq=44, capacity_tokens=128)
        prompt = [3, 1, 4, 1, 5]
        [result] = engine.generate([prompt], SamplingParams(max_tokens=32))
        assert result.finish_reason == "length"
        assert len(result.tokens) == 32

        toks = list(prompt)
        model = dict(vocab=SMALL["vocab"], max_seq=44, d_model=SMALL["d_model"],
                     heads=SMALL["heads"], layers=SMALL["layers"],
                     seed=SMALL["seed"])
        for step, want in enumerate(result.tokens):
            g = tiny_decoder(mode="full", seq_len=len(toks), **model)
            out = Session(g).run({
                "tokens": np.asarray(toks, np.int32)[None],
                "positions": np.arange(len(toks), dtype=np.int32)[None],
            })
            got = int(np.argmax(out["logits"][0, -1]))
            assert got == want, (
                f"token {step}: cached decode produced {want}, "
                f"full recompute produced {got}"
            )
            toks.append(want)


class TestScheduler:
    def test_results_in_input_order(self):
        engine = small_engine()
        reqs = prompts(5)
        results = engine.generate(reqs, SamplingParams(max_tokens=4))
        assert [r.request_id for r in results] == [f"req-{i}" for i in range(5)]
        assert all(r.finish_reason == "length" and len(r.tokens) == 4
                   for r in results)

    def test_output_independent_of_batch_seats(self):
        """Continuous batching is a throughput lever only: the same
        requests produce the same tokens whether they share seats or
        run effectively serial."""
        reqs = prompts(5)
        params = SamplingParams(max_tokens=6)
        wide = small_engine(max_batch=4, capacity_tokens=256)
        narrow = small_engine(max_batch=1)
        a = [r.tokens for r in wide.generate(reqs, params)]
        b = [r.tokens for r in narrow.generate(reqs, params)]
        assert a == b

    def test_sampled_generations_replay(self):
        reqs = prompts(3)
        params = SamplingParams(max_tokens=6, temperature=0.9, top_k=6, seed=2)
        a = [r.tokens for r in small_engine().generate(reqs, params)]
        b = [r.tokens for r in small_engine().generate(reqs, params)]
        assert a == b

    def test_per_request_params_and_stop_tokens(self):
        engine = small_engine()
        probe = engine.generate([[1, 2, 3]], SamplingParams(max_tokens=3))[0]
        stop = probe.tokens[1]  # force an early stop on the 2nd token
        reqs = [
            GenRequest("stopper", [1, 2, 3],
                       SamplingParams(max_tokens=8, stop_tokens=(stop,))),
            GenRequest("runner", [4, 5], SamplingParams(max_tokens=3)),
        ]
        stopper, runner = engine.generate(reqs)
        assert stopper.finish_reason == "stop"
        assert stopper.tokens[-1] == stop and len(stopper.tokens) <= 2
        assert runner.finish_reason == "length" and len(runner.tokens) == 3

    def test_join_leave_trace_instants(self):
        tracer = Tracer()
        engine = GenerationEngine(GenerationConfig(**SMALL, trace=tracer))
        engine.generate(prompts(3), SamplingParams(max_tokens=3))
        names = [s.name for s in tracer.spans]
        assert names.count("genai.batch_join") == 3
        assert names.count("genai.batch_leave") == 3
        assert "genai.prefill" in names and "genai.decode_step" in names
        assert "genai.generate" in names

    def test_more_requests_than_seats_all_complete(self):
        engine = small_engine(max_batch=2)
        results = engine.generate(prompts(7), SamplingParams(max_tokens=5))
        assert len(results) == 7
        assert all(r.finish_reason == "length" for r in results)
        # Batch never exceeded its two seats.
        sizes = engine.metrics.histogram("genai.batch_size")
        assert max(sizes._values) <= 2

    def test_invalid_prompts_fail_alone(self):
        engine = small_engine()
        reqs = [
            GenRequest("ok", [1, 2, 3]),
            GenRequest("empty", []),
            GenRequest("huge", list(range(SMALL["max_seq"] + 1))),
        ]
        ok, empty, huge = engine.generate(reqs)
        assert ok.finish_reason == "length"
        assert empty.finish_reason == "error" and "outside" in empty.error
        assert huge.finish_reason == "error"
        assert engine.stats()["request_errors"] == 2

    def test_duplicate_request_ids_rejected(self):
        engine = small_engine()
        with pytest.raises(ValueError, match="duplicate"):
            engine.generate([GenRequest("a", [1]), GenRequest("a", [2])])

    def test_generation_budget_clamped_by_max_seq(self):
        engine = small_engine(max_seq=16, capacity_tokens=64)
        prompt = list(range(1, 13))  # 12 tokens; only 4 seats left
        [r] = engine.generate([prompt], SamplingParams(max_tokens=50))
        assert len(r.tokens) == 4
        assert r.finish_reason == "length"

    def test_tight_arena_serializes_but_completes(self):
        """Admission control: an arena with room for ~one sequence forces
        serial execution, never failure."""
        engine = small_engine(max_batch=4, capacity_tokens=16, page_tokens=4,
                              max_seq=12, retain_kv=False)
        results = engine.generate(prompts(4, lo=2, hi=5),
                                  SamplingParams(max_tokens=4))
        assert all(r.finish_reason == "length" for r in results)

    def test_retain_kv_retires_slabs_for_lazy_eviction(self):
        engine = small_engine(retain_kv=True, capacity_tokens=16, max_seq=12,
                              page_tokens=4, max_batch=1)
        engine.generate(prompts(4, lo=2, hi=5), SamplingParams(max_tokens=3))
        # Finished slabs were retired, and later admissions had to evict.
        assert engine.stats()["evictions"] > 0
        assert engine.allocator.free_pages >= 0


class TestEngineFrontDoor:
    def test_config_or_overrides_not_both(self):
        with pytest.raises(ValueError, match="not both"):
            GenerationEngine(GenerationConfig(), vocab=32)

    def test_stats_shape(self):
        engine = small_engine()
        engine.generate(prompts(2), SamplingParams(max_tokens=3))
        stats = engine.stats()
        assert stats["requests"] == 2
        assert stats["decode_tokens"] >= 4
        assert stats["prefill_tokens"] >= 4
        assert 0.0 <= stats["kv_page_utilization"] <= 1.0
        assert stats["decode_sessions"] >= 1

    def test_warm_prepares_prefill_buckets(self):
        engine = small_engine()
        engine.warm()
        assert sorted(engine.prefill._pools) == [8, 16, 24]

    def test_decode_grid_reused_across_requests(self):
        engine = small_engine()
        engine.generate(prompts(3), SamplingParams(max_tokens=4))
        first = set(engine.decode.prepared)
        engine.generate(prompts(3, seed=99), SamplingParams(max_tokens=4))
        assert set(engine.decode.prepared) == first  # no new cells

    def test_kv_layout_stays_sanitizer_clean_mid_flight(self):
        engine = small_engine()
        engine.generate(prompts(3), SamplingParams(max_tokens=4))
        from repro.analysis import has_errors

        report = engine.allocator.check()
        assert not has_errors(report.diagnostics)


class TestGenerateFaults:
    def test_alloc_storm_degrades_not_crashes(self):
        """kvcache.alloc faults during generation: transients retry,
        fatals evict or preempt; completed outputs match fault-free."""
        reqs = prompts(4)
        params = SamplingParams(max_tokens=5)
        gold = [r.tokens for r in small_engine().generate(reqs, params)]

        plan = FaultPlan([
            FaultRule("kvcache.alloc", "transient", times=2),
            FaultRule("kvcache.alloc", "fatal", p=0.5, times=3),
        ], seed=5)
        engine = GenerationEngine(GenerationConfig(**SMALL, faults=plan))
        results = engine.generate(reqs, params)
        assert plan.injected > 0
        for got, want in zip(results, gold):
            if got.finish_reason != "error":
                assert got.tokens == want  # memory churn never moves bits

    def test_exhausted_arena_with_no_runners_fails_typed(self):
        """A request that can never be admitted gets a typed error result,
        not a hang or a crash."""
        plan = FaultPlan([FaultRule("kvcache.alloc", "fatal")], seed=0)
        engine = GenerationEngine(GenerationConfig(**SMALL, faults=plan))
        [r] = engine.generate([[1, 2, 3]], SamplingParams(max_tokens=4))
        assert r.finish_reason == "error"
        assert "kv admission failed" in r.error


class TestCliGenerate:
    def test_selftest_greedy(self, capsys):
        from repro.tools.cli import main

        assert main(["generate", "--prompts", "2", "--max-tokens", "4",
                     "--max-seq", "16", "--d-model", "16", "--layers", "1",
                     "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical vs full recompute" in out
        assert "throughput:" in out

    def test_selftest_sampled_and_trace(self, tmp_path, capsys):
        import json

        from repro.tools.cli import main

        trace = str(tmp_path / "gen.json")
        assert main(["generate", "--prompts", "2", "--max-tokens", "4",
                     "--max-seq", "16", "--d-model", "16", "--layers", "1",
                     "--temperature", "0.7", "--top-k", "4",
                     "--selftest", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "reproducible under reseeded replay" in out
        events = json.load(open(trace))["traceEvents"]
        assert any(e.get("name") == "genai.decode_step" for e in events)
