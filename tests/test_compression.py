"""Tests for pruning and fp16 compression (converter extensions)."""

import numpy as np
import pytest

from repro.converter import (
    convert_to_fp16,
    fp16_savings,
    optimize,
    prune_model,
    sparsity_report,
)
from repro.core import Session
from repro.core.reference import execute_reference
from repro.ir import GraphBuilder

RNG = np.random.default_rng(66)


def small_net():
    b = GraphBuilder("c", seed=2)
    x = b.input("in", (1, 3, 16, 16))
    x = b.conv(x, oc=16, kernel=3, activation="relu")
    x = b.conv(x, oc=16, kernel=3, activation="relu")
    x = b.fc(b.global_avg_pool(x), units=5)
    b.output(b.softmax(x))
    return b.finish()


def feeds():
    return {"in": RNG.standard_normal((1, 3, 16, 16)).astype(np.float32)}


class TestPruning:
    def test_target_sparsity_achieved(self):
        _, report = prune_model(small_net(), 0.5)
        assert report.achieved_sparsity == pytest.approx(0.5, abs=0.01)

    def test_global_budget_is_nonuniform(self):
        """Global magnitude pruning concentrates on low-magnitude layers."""
        g = small_net()
        # scale one conv's weights up: it should be pruned *less*
        conv_weights = [n.inputs[1] for n in g.nodes if n.op_type == "Conv2D"]
        g.constants[conv_weights[0]] = g.constants[conv_weights[0]] * 10
        _, report = prune_model(g, 0.5)
        assert report.per_tensor[conv_weights[0]] < report.per_tensor[conv_weights[1]]

    def test_zero_sparsity_is_identity(self):
        g = small_net()
        pruned, report = prune_model(g, 0.0)
        assert report.achieved_sparsity == 0.0
        for name in g.constants:
            np.testing.assert_array_equal(pruned.constants[name], g.constants[name])

    def test_original_untouched(self):
        g = small_net()
        before = {k: v.copy() for k, v in g.constants.items()}
        prune_model(g, 0.9)
        for name, value in before.items():
            np.testing.assert_array_equal(g.constants[name], value)

    def test_protect_list(self):
        g = small_net()
        first_conv_w = next(n for n in g.nodes if n.op_type == "Conv2D").inputs[1]
        pruned, report = prune_model(g, 0.8, protect=[first_conv_w])
        assert first_conv_w not in report.per_tensor
        assert (pruned.constants[first_conv_w] != 0).mean() > 0.95

    def test_pruned_model_still_runs(self):
        pruned, _ = prune_model(small_net(), 0.6)
        out = list(Session(pruned).run(feeds()).values())[0]
        assert out.sum() == pytest.approx(1.0, abs=1e-4)

    def test_mild_pruning_small_drift(self):
        g = small_net()
        f = feeds()
        ref = execute_reference(g, f)[g.outputs[0]]
        pruned, _ = prune_model(g, 0.2)
        got = execute_reference(pruned, f)[pruned.outputs[0]]
        assert np.abs(ref - got).max() < 0.25

    def test_compression_accounting(self):
        _, report = prune_model(small_net(), 0.8)
        # at 80% sparsity, value+index storage beats dense by ~2.5x
        assert report.compression > 2.0
        _, report_low = prune_model(small_net(), 0.1)
        assert report_low.compression < 1.0  # not worth it at low sparsity

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError, match="sparsity"):
            prune_model(small_net(), 1.0)
        with pytest.raises(ValueError, match="sparsity"):
            prune_model(small_net(), -0.2)

    def test_no_prunable_weights(self):
        b = GraphBuilder()
        x = b.input("in", (1, 4))
        b.output(b.relu(x))
        with pytest.raises(ValueError, match="prunable"):
            prune_model(b.finish(), 0.5)

    def test_sparsity_report(self):
        pruned, report = prune_model(small_net(), 0.5)
        measured = sparsity_report(pruned)
        for name, s in report.per_tensor.items():
            assert measured[name] == pytest.approx(s, abs=1e-6)


class TestFp16:
    def test_halves_weight_bytes(self):
        g = small_net()
        optimize(g)  # fold BN so only conv/fc weights remain
        converted = convert_to_fp16(g)
        before, after = fp16_savings(g, converted)
        assert after < before * 0.55

    def test_weights_are_fp16(self):
        converted = convert_to_fp16(small_net())
        fc_w = next(
            v for k, v in converted.constants.items() if k.startswith("fc_weight")
        )
        assert fc_w.dtype == np.float16

    def test_bn_params_stay_fp32(self):
        b = GraphBuilder(seed=0)
        x = b.input("in", (1, 3, 8, 8))
        x = b.conv(x, oc=4, kernel=3)
        x = b.batch_norm(x)
        b.output(x)
        g = b.finish()
        converted = convert_to_fp16(g)
        bn = next(n for n in converted.nodes if n.op_type == "BatchNorm")
        for name in bn.inputs[1:]:
            assert converted.constants[name].dtype == np.float32

    def test_outputs_close_to_fp32(self):
        g = small_net()
        f = feeds()
        ref = execute_reference(g, f)[g.outputs[0]]
        converted = convert_to_fp16(g)
        got = execute_reference(converted, f)[converted.outputs[0]]
        assert np.abs(ref - got).max() < 5e-3

    def test_fp16_model_runs_in_session_and_serializes(self):
        from repro.ir import dumps, loads

        converted = convert_to_fp16(small_net())
        round_tripped = loads(dumps(converted))
        out = list(Session(round_tripped).run(feeds()).values())[0]
        assert out.sum() == pytest.approx(1.0, abs=1e-3)

    def test_stacks_with_pruning(self):
        pruned, _ = prune_model(small_net(), 0.5)
        both = convert_to_fp16(pruned)
        out = list(Session(both).run(feeds()).values())[0]
        assert np.isfinite(out).all()
