"""Unit tests for the span tracer (repro.obs.tracer)."""

import threading
import time

import pytest

from repro.obs import Span, Tracer, get_tracer, set_tracer
from repro.obs.tracer import _NULL_SPAN


class TestSpanRecording:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        with tracer.span("work", "test", flavor="unit"):
            time.sleep(0.001)
        spans = tracer.spans
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "work"
        assert span.category == "test"
        assert span.args == {"flavor": "unit"}
        assert span.dur_ms >= 1.0
        assert span.tid == threading.get_ident()
        assert not span.instant

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
        depths = {s.name: s.depth for s in tracer.spans}
        assert depths == {"outer": 0, "inner": 1, "innermost": 2}

    def test_nested_spans_contained_in_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us

    def test_depth_restored_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        with tracer.span("after"):
            pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["boom"].args["error"] == "RuntimeError"
        assert by_name["after"].depth == 0

    def test_set_attaches_args(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(cached=True, n=3)
        assert tracer.spans[0].args == {"cached": True, "n": 3}

    def test_record_endpoint_api(self):
        tracer = Tracer()
        start = time.perf_counter()
        time.sleep(0.001)
        end = time.perf_counter()
        tracer.record("op_a", "op", start, end, op="Conv2D")
        span = tracer.spans[0]
        assert span.name == "op_a"
        assert span.dur_ms == pytest.approx((end - start) * 1000.0, rel=1e-6)
        assert span.args["op"] == "Conv2D"

    def test_record_inherits_open_span_depth(self):
        tracer = Tracer()
        with tracer.span("run"):
            now = time.perf_counter()
            tracer.record("op_a", "op", now, now)
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["op_a"].depth == 1

    def test_instant(self):
        tracer = Tracer()
        tracer.instant("cache.hit", "serving", key="abc")
        span = tracer.spans[0]
        assert span.instant
        assert span.dur_us == 0.0
        assert span.args["key"] == "abc"


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        handle = tracer.span("x", "y", a=1)
        assert handle is _NULL_SPAN
        assert tracer.span("other") is handle  # no allocation per call
        with handle as h:
            h.set(anything=1)
        assert len(tracer) == 0

    def test_disabled_record_and_instant_are_noops(self):
        tracer = Tracer(enabled=False)
        now = time.perf_counter()
        tracer.record("op", "op", now, now)
        tracer.instant("evt")
        assert len(tracer) == 0

    def test_global_default_is_disabled(self):
        assert not get_tracer().enabled


class TestGlobalTracer:
    def test_set_tracer_returns_previous(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestThreadSafety:
    def test_concurrent_recording(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 50
        # OS thread idents are recycled as threads exit; the barrier keeps
        # all workers alive at once so each records under a distinct tid.
        barrier = threading.Barrier(n_threads)

        def work(i):
            barrier.wait()
            for j in range(per_thread):
                with tracer.span(f"t{i}.{j}", "stress"):
                    pass
            barrier.wait()

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans
        assert len(spans) == n_threads * per_thread
        assert len({s.tid for s in spans}) == n_threads
        # per-thread nesting is independent: every span here is depth 0
        assert all(s.depth == 0 for s in spans)

    def test_thread_names_captured(self):
        tracer = Tracer()
        done = threading.Event()

        def work():
            with tracer.span("named"):
                pass
            done.set()

        t = threading.Thread(target=work, name="my-worker")
        t.start()
        t.join()
        assert done.is_set()
        names = tracer.thread_names
        assert "my-worker" in names.values()


class TestMarkAndClear:
    def test_mark_and_spans_since(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after1"):
            pass
        with tracer.span("after2"):
            pass
        since = tracer.spans_since(mark)
        assert [s.name for s in since] == ["after1", "after2"]
        assert len(tracer) == 3

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.spans == []


class TestSpanDataclass:
    def test_derived_properties(self):
        span = Span(name="s", category="c", start_us=100.0, dur_us=2500.0, tid=1)
        assert span.end_us == 2600.0
        assert span.dur_ms == 2.5
