"""Batch-size coverage: every kernel and the whole engine handle N > 1."""

import numpy as np
import pytest

from repro.core import Session
from repro.core.reference import execute_reference
from repro.models import build_model, mobilenet_v1, tiny_transformer

RNG = np.random.default_rng(131)


class TestBatchedInference:
    def test_batched_equals_stacked_singles(self):
        """Running a batch must equal running each sample alone."""
        g = mobilenet_v1(input_size=64, width=0.25, classes=7, batch=3, seed=2)
        session = Session(g)
        batch = RNG.standard_normal((3, 3, 64, 64)).astype(np.float32)
        got = list(session.run({"data": batch}).values())[0]

        g1 = mobilenet_v1(input_size=64, width=0.25, classes=7, batch=1, seed=2)
        single = Session(g1)
        for i in range(3):
            want = list(single.run({"data": batch[i : i + 1]}).values())[0]
            np.testing.assert_allclose(got[i : i + 1], want, atol=1e-4)

    def test_batched_transformer(self):
        g = tiny_transformer(vocab=80, seq_len=12, d_model=32, heads=2,
                             layers=1, classes=3, batch=4, seed=0)
        tokens = RNG.integers(0, 80, (4, 12)).astype(np.int32)
        probs = list(Session(g).run({"tokens": tokens}).values())[0]
        assert probs.shape == (4, 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-4)

    def test_batch_rows_independent(self):
        """Changing one sample must not perturb the others."""
        g = mobilenet_v1(input_size=64, width=0.25, classes=5, batch=2, seed=3)
        session = Session(g)
        a = RNG.standard_normal((2, 3, 64, 64)).astype(np.float32)
        base = list(session.run({"data": a}).values())[0]
        b = a.copy()
        b[1] = RNG.standard_normal((3, 64, 64))
        perturbed = list(session.run({"data": b}).values())[0]
        np.testing.assert_allclose(base[0], perturbed[0], atol=1e-5)
        assert not np.allclose(base[1], perturbed[1])

    @pytest.mark.parametrize("batch", [2, 5])
    def test_memory_plan_scales_with_batch(self, batch):
        from repro.core import plan_memory

        g1 = build_model("squeezenet_v1.1", input_size=64, batch=1)
        gn = build_model("squeezenet_v1.1", input_size=64, batch=batch)
        p1 = plan_memory(g1)
        pn = plan_memory(gn)
        pn.validate()
        assert pn.arena_bytes >= p1.arena_bytes * batch * 0.8

    def test_batched_winograd_path(self):
        """Batch dim flows through the Winograd tiling correctly."""
        from repro.ir import GraphBuilder

        b = GraphBuilder(seed=0)
        x = b.input("in", (4, 32, 20, 20))
        y = b.conv(x, oc=32, kernel=3, pad_mode="same")
        b.output(y)
        g = b.finish()
        session = Session(g)
        assert any(d.kind == "winograd" for d in session.schemes.values())
        data = RNG.standard_normal((4, 32, 20, 20)).astype(np.float32)
        got = list(session.run({"in": data}).values())[0]
        want = execute_reference(g, {"in": data})[y]
        np.testing.assert_allclose(got, want, atol=1e-3)
