"""Tests for the multi-output Split op and parallel branch execution."""

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.core.reference import execute_reference
from repro.converter import convert_onnx_like
from repro.ir import GraphBuilder, GraphError, Op, dumps, loads

RNG = np.random.default_rng(111)


class TestSplitOp:
    def test_split_shapes_and_values(self):
        b = GraphBuilder()
        x = b.input("x", (1, 10, 4, 4))
        parts = b.split(x, sizes=(3, 3, 4), axis=1)
        b.output(*parts)
        g = b.finish()
        assert g.desc(parts[0]).shape == (1, 3, 4, 4)
        assert g.desc(parts[2]).shape == (1, 4, 4, 4)
        data = RNG.standard_normal((1, 10, 4, 4)).astype(np.float32)
        env = execute_reference(g, {"x": data})
        np.testing.assert_array_equal(env[parts[1]], data[:, 3:6])

    def test_split_sizes_must_sum(self):
        b = GraphBuilder()
        x = b.input("x", (1, 10, 4, 4))
        parts = b.split(x, sizes=(3, 3), axis=1)
        b.output(*parts)
        with pytest.raises(GraphError, match="sum"):
            b.finish()

    def test_split_then_concat_is_identity(self):
        b = GraphBuilder()
        x = b.input("x", (2, 8, 3, 3))
        parts = b.split(x, sizes=(2, 6), axis=1)
        y = b.concat(parts, axis=1)
        b.output(y)
        g = b.finish()
        data = RNG.standard_normal((2, 8, 3, 3)).astype(np.float32)
        out = execute_reference(g, {"x": data})[y]
        np.testing.assert_array_equal(out, data)

    def test_split_through_session_and_serialization(self):
        b = GraphBuilder(seed=1)
        x = b.input("x", (1, 8, 8, 8))
        lo, hi = b.split(x, sizes=(4, 4), axis=1)
        lo = b.conv(lo, oc=4, kernel=3)
        hi = b.relu(hi)
        b.output(b.concat([lo, hi], axis=1))
        g = loads(dumps(b.finish()))
        out = Session(g).run({"x": RNG.standard_normal((1, 8, 8, 8)).astype(np.float32)})
        assert list(out.values())[0].shape == (1, 8, 8, 8)

    def test_onnx_split_frontend(self):
        model = {
            "inputs": [{"name": "x", "shape": [1, 6, 4, 4]}],
            "outputs": ["a", "b"],
            "initializers": {},
            "nodes": [{"op_type": "Split", "inputs": ["x"], "outputs": ["a", "b"],
                       "attrs": {"axis": 1, "split": [2, 4]}}],
        }
        g = convert_onnx_like(model)
        assert g.desc("a").shape == (1, 2, 4, 4)
        assert g.desc("b").shape == (1, 4, 4, 4)


def branchy_net(seed=9):
    """An inception-ish block with four independent branches."""
    b = GraphBuilder("branchy", seed=seed)
    x = b.input("in", (1, 16, 32, 32))
    b1 = b.conv(x, oc=8, kernel=1, activation="relu")
    b2 = b.conv(x, oc=8, kernel=3, activation="relu")
    b3 = b.conv(x, oc=8, kernel=5, activation="relu")
    b4 = b.relu(b.conv(b.avg_pool(x, 3, stride=1, pad_mode="same"), oc=8, kernel=1))
    x = b.concat([b1, b2, b3, b4])
    x = b.fc(b.global_avg_pool(x), units=6)
    b.output(b.softmax(x))
    return b.finish()


class TestParallelExecution:
    def test_matches_sequential(self):
        g = branchy_net()
        feed = {"in": RNG.standard_normal((1, 16, 32, 32)).astype(np.float32)}
        want = list(Session(g).run(feed).values())[0]
        parallel = Session(g, SessionConfig(parallel_branches=True, threads=4))
        got = list(parallel.run(feed).values())[0]
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_repeated_runs_stable(self):
        g = branchy_net()
        session = Session(g, SessionConfig(parallel_branches=True, threads=4))
        feed = {"in": RNG.standard_normal((1, 16, 32, 32)).astype(np.float32)}
        a = list(session.run(feed).values())[0]
        for _ in range(5):
            np.testing.assert_array_equal(
                list(session.run(feed).values())[0], a
            )

    def test_diamond_dependencies_respected(self):
        b = GraphBuilder(seed=0)
        x = b.input("in", (1, 4, 8, 8))
        left = b.conv(x, oc=4, kernel=3)
        right = b.conv(x, oc=4, kernel=1)
        joined = b.add(left, right)
        b.output(b.relu(joined))
        g = b.finish()
        feed = {"in": RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)}
        want = list(Session(g).run(feed).values())[0]
        got = list(
            Session(g, SessionConfig(parallel_branches=True)).run(feed).values()
        )[0]
        np.testing.assert_allclose(got, want, atol=1e-6)

    def test_input_validation_still_applies(self):
        session = Session(branchy_net(), SessionConfig(parallel_branches=True))
        with pytest.raises(GraphError, match="missing input"):
            session.run({})
        with pytest.raises(GraphError, match="expected shape"):
            session.run({"in": np.zeros((1, 1, 1, 1), np.float32)})

    def test_errors_propagate_from_workers(self):
        g = branchy_net()
        session = Session(g, SessionConfig(parallel_branches=True))
        # poison one execution to throw
        name = next(iter(session._executions))
        class Boom(Exception):
            pass

        def explode(inputs):
            raise Boom("kernel failure")

        session._executions[name].runner.fn = explode
        with pytest.raises(Boom):
            session.run({"in": np.zeros((1, 16, 32, 32), np.float32)})

    def test_simulated_backend_ignores_flag(self):
        from repro.devices import get_device

        g = branchy_net()
        session = Session(
            g,
            SessionConfig(parallel_branches=True, backend="vulkan",
                          device=get_device("MI6")),
        )
        feed = {"in": RNG.standard_normal((1, 16, 32, 32)).astype(np.float32)}
        session.run(feed)
        assert session.last_run.virtual_ms > 0  # sequential virtual path ran

    def test_random_graph_parity(self):
        """Parallel executor agrees with sequential on assorted topologies."""
        for seed in range(5):
            g = branchy_net(seed=seed)
            feed = {"in": RNG.standard_normal((1, 16, 32, 32)).astype(np.float32)}
            want = list(Session(g).run(feed).values())[0]
            got = list(
                Session(g, SessionConfig(parallel_branches=True, threads=3))
                .run(feed).values()
            )[0]
            np.testing.assert_allclose(got, want, atol=1e-5)
