"""Tests for the Winograd generator and Winograd convolution."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import generate_transforms, transform_kernel, winograd_conv2d
from repro.kernels.winograd import interpolation_points

from .gold import conv2d_naive

RNG = np.random.default_rng(7)


class TestInterpolationPoints:
    def test_eq8_sequence(self):
        f = Fraction(1, 2)
        pts = interpolation_points(5, f)
        assert pts == [0, f, -f, 2 * f, -2 * f]

    def test_points_distinct(self):
        pts = interpolation_points(11)
        assert len(set(pts)) == 11

    def test_custom_f(self):
        pts = interpolation_points(3, Fraction(1))
        assert pts == [0, 1, -1]


class TestGenerator:
    def test_f23_is_exact_bilinear_algorithm(self):
        """The generated (AT, G, BT) must satisfy the correlation identity."""
        tr = generate_transforms(2, 3)
        self._check_identity(tr)

    @pytest.mark.parametrize("n,k", [(2, 3), (4, 3), (6, 3), (2, 5), (4, 5), (2, 7), (3, 4), (2, 2)])
    def test_identity_many_sizes(self, n, k):
        self._check_identity(generate_transforms(n, k))

    @staticmethod
    def _check_identity(tr):
        # sum_l AT[j,l] G[l,c] BT[l,i] == [i == j + c]
        tensor = np.einsum("jl,lc,li->jci", tr.at, tr.g, tr.bt)
        expected = np.zeros_like(tensor)
        for j in range(tr.n):
            for c in range(tr.k):
                expected[j, c, j + c] = 1.0
        np.testing.assert_allclose(tensor, expected, atol=1e-9)

    def test_shapes(self):
        tr = generate_transforms(4, 3)
        assert tr.t == 6
        assert tr.at.shape == (4, 6)
        assert tr.g.shape == (6, 3)
        assert tr.bt.shape == (6, 6)

    def test_1d_correlation_random(self):
        tr = generate_transforms(3, 3)
        d = RNG.standard_normal(tr.t)
        g = RNG.standard_normal(3)
        y = tr.at @ ((tr.g @ g) * (tr.bt @ d))
        ref = np.correlate(d, g, mode="valid")
        np.testing.assert_allclose(y, ref, atol=1e-10)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError, match="invalid"):
            generate_transforms(0, 3)
        with pytest.raises(ValueError, match="invalid"):
            generate_transforms(2, 0)

    def test_cached(self):
        a = generate_transforms(2, 3)
        b = generate_transforms(2, 3)
        assert a is b

    @given(st.integers(1, 6), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_identity_holds(self, n, k):
        self._check_identity(generate_transforms(n, k))


class TestTransformKernel:
    def test_output_layout(self):
        w = RNG.standard_normal((8, 4, 3, 3)).astype(np.float32)
        tr = generate_transforms(2, 3)
        wt = transform_kernel(w, tr)
        assert wt.shape == (4, 4, 4, 8)  # (t, t, ic, oc)

    def test_kernel_size_mismatch(self):
        w = RNG.standard_normal((8, 4, 5, 5)).astype(np.float32)
        with pytest.raises(ValueError, match="does not match"):
            transform_kernel(w, generate_transforms(2, 3))


class TestWinogradConv:
    @pytest.mark.parametrize(
        "n,k,ic,oc,hw",
        [
            (2, 3, 4, 8, 12),
            (4, 3, 3, 5, 14),
            (6, 3, 2, 2, 20),
            (2, 5, 3, 4, 13),
            (2, 7, 2, 2, 15),   # the Inception-style large kernel
            (2, 2, 3, 16, 10),  # Table 1's k=2 case
        ],
    )
    def test_matches_naive(self, n, k, ic, oc, hw):
        x = RNG.standard_normal((2, ic, hw, hw)).astype(np.float32)
        w = RNG.standard_normal((oc, ic, k, k)).astype(np.float32)
        bias = RNG.standard_normal(oc).astype(np.float32)
        pads = (k // 2,) * 4
        got = winograd_conv2d(x, w, bias, n=n, pads=pads)
        want = conv2d_naive(x, w, bias, pads=pads)
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, atol=1e-3 * max(1, np.abs(want).max()))

    def test_no_padding(self):
        x = RNG.standard_normal((1, 3, 9, 9)).astype(np.float32)
        w = RNG.standard_normal((4, 3, 3, 3)).astype(np.float32)
        got = winograd_conv2d(x, w, n=2)
        want = conv2d_naive(x, w)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_tile_not_dividing_output(self):
        # 11x11 output with n=4 tiles: boundary tiles must be handled
        x = RNG.standard_normal((1, 2, 13, 13)).astype(np.float32)
        w = RNG.standard_normal((3, 2, 3, 3)).astype(np.float32)
        got = winograd_conv2d(x, w, n=4)
        want = conv2d_naive(x, w)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_asymmetric_padding(self):
        x = RNG.standard_normal((1, 3, 10, 10)).astype(np.float32)
        w = RNG.standard_normal((4, 3, 3, 3)).astype(np.float32)
        pads = (0, 1, 1, 0)
        got = winograd_conv2d(x, w, n=2, pads=pads)
        want = conv2d_naive(x, w, pads=pads)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_rejects_stride(self):
        x = RNG.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((4, 3, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="stride"):
            winograd_conv2d(x, w, n=2, stride=(2, 2))

    def test_rejects_non_square_kernel(self):
        x = RNG.standard_normal((1, 3, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((4, 3, 1, 7)).astype(np.float32)
        with pytest.raises(ValueError, match="square"):
            winograd_conv2d(x, w, n=2)

    def test_numerical_error_grows_with_tile(self):
        """Ablation premise: larger tiles are less numerically stable."""
        x = RNG.standard_normal((1, 8, 36, 36)).astype(np.float32)
        w = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        want = conv2d_naive(x, w)
        errs = []
        for n in (2, 4, 6):
            got = winograd_conv2d(x, w, n=n)
            errs.append(np.abs(got - want).max())
        assert errs[0] <= errs[-1] * 10  # small tiles never wildly worse
        assert all(e < 1e-2 for e in errs)

    @given(
        n=st.integers(1, 4),
        k=st.sampled_from([2, 3, 5]),
        hw=st.integers(8, 24),
        ic=st.integers(1, 6),
        oc=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equals_direct_conv(self, n, k, hw, ic, oc):
        if hw < k:
            hw = k + n
        x = RNG.standard_normal((1, ic, hw, hw)).astype(np.float32)
        w = RNG.standard_normal((oc, ic, k, k)).astype(np.float32)
        got = winograd_conv2d(x, w, n=n)
        want = conv2d_naive(x, w)
        np.testing.assert_allclose(got, want, atol=1e-3 * max(1.0, np.abs(want).max()))
