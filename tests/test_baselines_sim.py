"""Tests for engine profiles, the latency simulator, and the TVM cost model."""

import numpy as np
import pytest

from repro.baselines import (
    AutoSearchEngine,
    ConvPattern,
    ENGINES,
    TuningCostModel,
    analyze_kernel_coverage,
    get_engine,
    unique_conv_workloads,
)
from repro.devices import get_device
from repro.ir import GraphBuilder
from repro.models import build_model
from repro.sim import estimate_latency


def small_inception_like():
    """A net with both table-covered and uncovered (1x7/7x1) convs."""
    b = GraphBuilder("mini_inc", seed=0)
    x = b.input("data", (1, 16, 32, 32))
    x = b.conv(x, oc=32, kernel=3, activation="relu")
    x = b.conv(x, oc=32, kernel=(1, 7), activation="relu")
    x = b.conv(x, oc=32, kernel=(7, 1), activation="relu")
    x = b.conv(x, oc=32, kernel=1)
    b.output(x)
    return b.finish()


class TestProfiles:
    def test_registry(self):
        assert set(ENGINES) == {"MNN", "NCNN", "MACE", "TF-Lite", "CoreML", "TVM"}
        with pytest.raises(KeyError, match="known"):
            get_engine("TensorRT")

    def test_paradigms(self):
        assert ENGINES["MNN"].paradigm == "semi-auto"
        assert ENGINES["NCNN"].paradigm == "manual"
        assert ENGINES["TVM"].paradigm == "auto"
        assert ENGINES["TF-Lite"].paradigm == "library"

    def test_conv_pattern_matching(self):
        p = ConvPattern((3, 3), (1, 1))
        assert p.matches((3, 3), (1, 1), (1, 1))
        assert not p.matches((3, 3), (2, 2), (1, 1))
        assert not p.matches((3, 3), (1, 1), (2, 2))
        anystride = ConvPattern((1, 1))
        assert anystride.matches((1, 1), (2, 2), (1, 1))

    def test_manual_table_misses_asymmetric_kernels(self):
        ncnn = ENGINES["NCNN"]
        assert ncnn.conv_is_optimized((3, 3), (1, 1), (1, 1))
        assert not ncnn.conv_is_optimized((1, 7), (1, 1), (1, 1))
        assert not ncnn.conv_is_optimized((7, 1), (1, 1), (1, 1))
        assert not ncnn.conv_is_optimized((3, 3), (1, 1), (2, 2))  # dilated

    def test_mnn_optimizes_everything(self):
        mnn = ENGINES["MNN"]
        assert mnn.conv_is_optimized((1, 7), (1, 1), (1, 1))
        assert mnn.scheme_search and mnn.uses_strassen

    def test_os_support(self):
        assert not ENGINES["MACE"].supports_os("ios")
        assert not ENGINES["CoreML"].supports_os("android")
        assert ENGINES["MNN"].supports_os("ios") and ENGINES["MNN"].supports_os("android")

    def test_per_os_efficiency(self):
        tfl = ENGINES["TF-Lite"]
        assert tfl.cpu_eff("ios") > tfl.cpu_eff("android")
        assert tfl.depthwise_eff("android") < tfl.cpu_eff("android")


class TestCoverage:
    def test_mini_inception_coverage(self):
        report = analyze_kernel_coverage(small_inception_like(), ENGINES["NCNN"])
        assert report.coverage == pytest.approx(0.5)  # 2 of 4 convs covered
        assert set(report.fallback_kernels) == {(1, 7), (7, 1)}
        assert 0 < report.fallback_mul_share < 1

    def test_inception_v3_fallback_share(self):
        """Figure 8's premise, quantified: a meaningful share of Inception's
        compute has no hand-written NCNN kernel."""
        report = analyze_kernel_coverage(build_model("inception_v3"), ENGINES["NCNN"])
        assert report.fallback_mul_share > 0.2
        assert (1, 7) in report.fallback_kernels and (7, 1) in report.fallback_kernels

    def test_mnn_full_coverage(self):
        report = analyze_kernel_coverage(build_model("inception_v3"), ENGINES["MNN"])
        assert report.coverage == 1.0
        assert report.fallback_mul_share == 0.0


class TestLatencySim:
    def setup_method(self):
        self.net = build_model("squeezenet_v1.1", input_size=128)
        self.mate20 = get_device("Mate20")

    def test_mnn_beats_others_on_cpu(self):
        """The headline Figure 7 claim."""
        mnn = estimate_latency(self.net, ENGINES["MNN"], self.mate20, "cpu", 4).total_ms
        for other in ("NCNN", "MACE", "TF-Lite"):
            assert estimate_latency(
                self.net, ENGINES[other], self.mate20, "cpu", 4
            ).total_ms > mnn

    def test_more_threads_is_faster(self):
        t2 = estimate_latency(self.net, ENGINES["MNN"], self.mate20, "cpu", 2).total_ms
        t4 = estimate_latency(self.net, ENGINES["MNN"], self.mate20, "cpu", 4).total_ms
        assert t4 < t2

    def test_faster_device_is_faster(self):
        mi6 = estimate_latency(self.net, ENGINES["MNN"], get_device("MI6"), "cpu", 4).total_ms
        mate = estimate_latency(self.net, ENGINES["MNN"], self.mate20, "cpu", 4).total_ms
        assert mate < mi6  # Kirin 980 vs throttled SD835, as in the paper

    def test_ncnn_inception_cliff(self):
        """Figure 8: case-by-case optimization collapses on Inception-v3."""
        inc = build_model("inception_v3")
        p20 = get_device("P20")
        mnn = estimate_latency(inc, ENGINES["MNN"], p20, "cpu", 4)
        ncnn = estimate_latency(inc, ENGINES["NCNN"], p20, "cpu", 4)
        assert ncnn.total_ms > 10 * mnn.total_ms  # paper: 4501 vs 297 (15x)
        assert ncnn.fallback_share() > 0.8
        # the slowest NCNN ops are exactly the asymmetric convolutions
        slowest = ncnn.slowest(3)
        assert all(op.algorithm == "fallback" for op in slowest)

    def test_mnn_vs_tvm_figure9(self):
        p20 = get_device("P20Pro")
        for name in ("mobilenet_v1", "squeezenet_v1.1"):
            g = build_model(name)
            mnn = estimate_latency(g, ENGINES["MNN"], p20, "cpu", 4).total_ms
            tvm = estimate_latency(g, ENGINES["TVM"], p20, "cpu", 4).total_ms
            assert mnn < tvm < mnn * 2  # MNN slightly ahead, same ballpark

    def test_gpu_backend_requires_support(self):
        with pytest.raises(ValueError, match="no metal backend"):
            estimate_latency(self.net, ENGINES["NCNN"], get_device("iPhoneX"), "metal")
        with pytest.raises(ValueError, match="does not expose"):
            estimate_latency(self.net, ENGINES["MNN"], self.mate20, "metal")

    def test_os_gate(self):
        with pytest.raises(ValueError, match="does not ship"):
            estimate_latency(self.net, ENGINES["CoreML"], self.mate20, "cpu", 4)

    def test_gpu_estimate_includes_dispatch(self):
        est = estimate_latency(self.net, ENGINES["MNN"], self.mate20, "vulkan")
        n_real_ops = len([o for o in est.per_op if o.algorithm != "fused"])
        assert est.total_ms > n_real_ops * 0.01  # every dispatch pays t_schedule

    def test_breakdown_sums_to_total(self):
        est = estimate_latency(self.net, ENGINES["MNN"], self.mate20, "cpu", 4)
        assert sum(est.by_op_type().values()) == pytest.approx(est.total_ms)
        assert sum(o.ms for o in est.per_op) == pytest.approx(est.total_ms)

    def test_winograd_shows_in_algorithms(self):
        est = estimate_latency(build_model("resnet18"), ENGINES["MNN"],
                               self.mate20, "cpu", 4)
        algos = {o.algorithm for o in est.per_op}
        assert any(a.startswith("winograd") for a in algos)
        assert "strassen" in algos or "direct" in algos


class TestTvmCostModel:
    def test_table5_values(self):
        """Fit check against Table 5 (ResNet-18, Galaxy S8)."""
        g = build_model("resnet18")
        cm = TuningCostModel()
        t1 = cm.tuning_seconds(g, 1)
        t10 = cm.tuning_seconds(g, 10)
        t30 = cm.tuning_seconds(g, 30)
        assert t1 == pytest.approx(355, rel=0.15)
        assert t10 == pytest.approx(1477, rel=0.15)
        assert t30 == pytest.approx(4583, rel=0.15)
        assert cm.compile_seconds(g, 1) == pytest.approx(40, rel=0.1)
        assert cm.compile_seconds(g, 30) == pytest.approx(41, rel=0.1)

    def test_tuning_scales_linearly_in_trials(self):
        g = build_model("squeezenet_v1.1")
        cm = TuningCostModel()
        t5, t10 = cm.tuning_seconds(g, 5), cm.tuning_seconds(g, 10)
        t20 = cm.tuning_seconds(g, 20)
        assert (t20 - t10) == pytest.approx(2 * (t10 - t5), rel=1e-6)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            TuningCostModel().tuning_seconds(build_model("squeezenet_v1.1"), -1)

    def test_workload_dedup(self):
        b = GraphBuilder("dup", seed=0)
        x = b.input("in", (1, 8, 16, 16))
        x = b.conv(x, oc=8, kernel=3)   # workload A
        x = b.conv(x, oc=8, kernel=3)   # workload A again (same shapes)
        x = b.conv(x, oc=16, kernel=3)  # workload B
        b.output(x)
        assert len(unique_conv_workloads(b.finish())) == 2

    def test_engine_artifact_lifecycle(self):
        engine = AutoSearchEngine()
        g = build_model("squeezenet_v1.1")
        assert not engine.can_run(g, "MI6")
        engine.deploy(g, "MI6", trials=2)
        assert engine.can_run(g, "MI6")
        assert not engine.can_run(g, "Mate20")  # per-device artifacts!
        engine.deploy(g, "Mate20", trials=2)
        # updating the model invalidates every artifact (the paper's point)
        dropped = engine.invalidate_model(g.name)
        assert dropped == 2
        assert not engine.can_run(g, "MI6")


class TestBenchUtils:
    def test_time_callable(self):
        from repro.bench import time_callable

        result = time_callable(lambda: sum(range(1000)), repeats=5, warmup=1)
        assert len(result.times_ms) == 5
        assert result.min_ms <= result.mean_ms

    def test_format_table(self):
        from repro.bench import format_table

        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "2.5" in text and "|" in text

    def test_loadgen_report(self):
        from repro.bench import run_single_stream

        report = run_single_stream(lambda: None, min_query_count=32)
        assert report.query_count >= 32
        assert report.min_latency_ns <= report.p50_latency_ns <= report.p90_latency_ns
        assert report.p90_latency_ns <= report.max_latency_ns
        assert report.qps_without_overhead >= report.qps_with_overhead

    def test_loadgen_rejects_zero_queries(self):
        from repro.bench import run_single_stream

        with pytest.raises(ValueError, match="min_query_count"):
            run_single_stream(lambda: None, min_query_count=0)
