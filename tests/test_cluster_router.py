"""Router/worker tier end-to-end: real processes, real kills.

Everything here spawns actual forked worker processes (hence the
``cluster`` marker): cross-process serving must stay bit-identical to a
local in-process engine, session placement must be sticky and
deterministic, admission control must shed with the typed backpressure
taxonomy, and a SIGKILLed worker must be replaced by the supervisor with
the losses surfaced per the request's policy — including the satellite
rule that a deadline expiring around a dead worker is reported as
``DeadlineExceeded``, never ``WorkerLost``.
"""

import json
import time

import numpy as np
import pytest

from repro.cluster import (
    Backpressure,
    Cluster,
    ClusterConfig,
    Overloaded,
    WorkerLost,
    fork_available,
)
from repro.faults import DeadlineExceeded, FaultPlan, FaultRule
from repro.faults.chaos import default_chaos_graph
from repro.genai import GenerationConfig, GenerationEngine, SamplingParams
from repro.obs import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.requests import RequestTracker

pytestmark = [
    pytest.mark.cluster,
    pytest.mark.skipif(not fork_available(),
                       reason="cluster tier needs the fork start method"),
]

RNG = np.random.default_rng(17)

GENAI = dict(vocab=48, max_seq=24, d_model=16, heads=2, layers=1, seed=7,
             max_batch=2, page_tokens=4, capacity_tokens=64,
             smallest_bucket=8)


@pytest.fixture(scope="module")
def net():
    return default_chaos_graph()


@pytest.fixture(scope="module")
def feeds(net):
    return {
        net.inputs[0]: RNG.standard_normal(
            net.desc(net.inputs[0]).shape).astype(np.float32)
    }


@pytest.fixture(scope="module")
def gold(net, feeds):
    from repro.serving import Engine, EngineConfig

    engine = Engine(net, EngineConfig(pool_size=1))
    return engine.infer(feeds)


def _wait_recovered(cluster, slot, timeout_s=60.0):
    t0 = time.monotonic()
    while time.monotonic() - t0 < timeout_s:
        if (cluster.supervisor.restarts(slot) >= 1
                and cluster.supervisor.is_up(slot)):
            return True
        time.sleep(0.02)
    return False


class TestBitIdentity:
    def test_infer_matches_local_engine(self, net, feeds, gold):
        with Cluster(net, ClusterConfig(
                workers=2, metrics=MetricsRegistry())) as cluster:
            out = cluster.infer(feeds)
            assert set(out) == set(gold)
            for name in gold:
                np.testing.assert_array_equal(out[name], gold[name])

    def test_generate_matches_local_engine(self):
        prompts = [[1, 2, 3], [4, 5], [6, 7, 8, 9]]
        local = GenerationEngine(GenerationConfig(**GENAI))
        gold = [list(r.tokens)
                for r in local.generate(prompts, SamplingParams(max_tokens=8))]
        with Cluster(config=ClusterConfig(
                workers=2, genai=dict(GENAI),
                metrics=MetricsRegistry())) as cluster:
            for i, prompt in enumerate(prompts):
                out = cluster.generate(prompt, {"max_tokens": 8},
                                       session_key=f"s{i}")
                assert out.tokens == gold[i]
                assert out.finish_reason in ("stop", "length")


class TestAffinity:
    def test_session_key_is_sticky(self, net, feeds, tmp_path):
        reg = MetricsRegistry()
        recorder = FlightRecorder(out_dir=str(tmp_path), metrics=reg)
        tracker = RequestTracker(metrics=reg, recorder=recorder)
        with Cluster(net, ClusterConfig(
                workers=2, metrics=reg, requests=tracker)) as cluster:
            for _ in range(5):
                cluster.infer(feeds, session_key="sticky-session")
        workers = set()
        for rid in (f"clu-{n}" for n in range(1, 6)):
            admitted = [e for e in recorder.events(rid) if e.name == "admitted"]
            assert admitted, f"no admitted event for {rid}"
            workers.add(admitted[0].args["worker"])
        assert len(workers) == 1  # every request landed on the same slot

    def test_keyless_requests_spread(self, net, feeds):
        # Two keyless requests held in flight must occupy two workers
        # (least-loaded placement), observable via the depth gauges.
        reg = MetricsRegistry()
        with Cluster(net, ClusterConfig(
                workers=2, metrics=reg, device_dwell_ms=150.0)) as cluster:
            f1 = cluster.submit_infer(feeds)
            f2 = cluster.submit_infer(feeds)
            time.sleep(0.03)
            health = cluster.health()
            assert [health[s]["queue_depth"] for s in (0, 1)] == [1, 1]
            f1.result()
            f2.result()


class TestAdmissionControl:
    def test_backpressure_typed_with_postmortem(self, net, feeds, tmp_path):
        reg = MetricsRegistry()
        recorder = FlightRecorder(out_dir=str(tmp_path), metrics=reg)
        tracker = RequestTracker(metrics=reg, recorder=recorder)
        with Cluster(net, ClusterConfig(
                workers=2, max_queue_depth=1, device_dwell_ms=200.0,
                metrics=reg, requests=tracker)) as cluster:
            first = cluster.submit_infer(feeds, session_key="pinned")
            with pytest.raises(Backpressure) as exc:
                cluster.infer(feeds, session_key="pinned")
            assert exc.value.bound == 1
            assert exc.value.depth >= 1
            first.result()  # the in-flight request is unaffected
        assert reg.value("router.shed.backpressure") == 1
        # The shed left a flight-recorder postmortem naming the error.
        dumps = [p for p in recorder.dumps if "Backpressure" in p]
        assert len(dumps) == 1
        with open(dumps[0], encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["trigger"] == "Backpressure"
        assert payload["request"] is not None

    def test_overloaded_when_every_worker_full(self, net, feeds):
        reg = MetricsRegistry()
        with Cluster(net, ClusterConfig(
                workers=2, max_queue_depth=1, device_dwell_ms=200.0,
                metrics=reg)) as cluster:
            inflight = [cluster.submit_infer(feeds) for _ in range(2)]
            with pytest.raises(Overloaded) as exc:
                cluster.infer(feeds)  # keyless, nowhere to go
            assert exc.value.capacity == 2
            for f in inflight:
                f.result()
        assert reg.value("router.shed.overloaded") == 1


class TestSupervision:
    def test_sigkill_is_recovered_bit_identical(self, net, feeds, gold):
        with Cluster(net, ClusterConfig(
                workers=2, metrics=MetricsRegistry())) as cluster:
            cluster.infer(feeds)
            cluster.supervisor.kill(0)
            assert _wait_recovered(cluster, 0)
            health = cluster.health()
            assert health[0]["up"] and health[0]["restarts"] == 1
            out = cluster.infer(feeds, session_key="post-recovery")
            for name in gold:
                np.testing.assert_array_equal(out[name], gold[name])


class TestWorkerLoss:
    def test_error_policy_surfaces_typed_loss_with_postmortem(
            self, net, feeds, tmp_path):
        reg = MetricsRegistry()
        recorder = FlightRecorder(out_dir=str(tmp_path), metrics=reg)
        tracker = RequestTracker(metrics=reg, recorder=recorder)
        plan = FaultPlan([FaultRule("worker.crash", "transient", times=1)],
                         seed=3)
        with Cluster(net, ClusterConfig(
                workers=2, metrics=reg, requests=tracker,
                faults=plan)) as cluster:
            with pytest.raises(WorkerLost) as exc:
                cluster.infer(feeds, session_key="doomed",
                              on_worker_lost="error")
            assert exc.value.request_id.startswith("clu-")
            assert exc.value.replays == 0
            # The router survives and keeps serving on live workers.
            cluster.infer(feeds, session_key="doomed", on_worker_lost="error")
        assert plan.injected == 1
        assert reg.value("cluster.lost") == 1
        dumps = [p for p in recorder.dumps if "WorkerLost" in p]
        assert len(dumps) == 1
        with open(dumps[0], encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["trigger"] == "WorkerLost"

    def test_replay_policy_is_transparent_and_bit_identical(
            self, net, feeds, gold):
        reg = MetricsRegistry()
        plan = FaultPlan([FaultRule("worker.crash", "transient", times=1)],
                         seed=3)
        with Cluster(net, ClusterConfig(
                workers=2, metrics=reg, faults=plan)) as cluster:
            out = cluster.infer(feeds, session_key="survivor",
                                on_worker_lost="replay")
            for name in gold:
                np.testing.assert_array_equal(out[name], gold[name])
        assert plan.injected == 1
        assert reg.value("cluster.replays") == 1

    def test_expired_deadline_on_dead_worker_is_deadline_exceeded(
            self, net, feeds):
        # Satellite rule: the budget ran out; which worker was going to
        # serve the request is an implementation detail.  A request whose
        # deadline expires while its (only) slot is dead and awaiting a
        # supervisor replacement must surface DeadlineExceeded, never
        # WorkerLost — even under the replay policy, which would happily
        # keep re-queueing it on the dead slot otherwise.
        with Cluster(net, ClusterConfig(
                workers=1, replay_budget=1000,
                metrics=MetricsRegistry())) as cluster:
            cluster.infer(feeds)  # workers warm; respawn cost is real
            cluster.supervisor.kill(0)
            # 8 ms is comfortably below the respawn floor (a fork plus a
            # fresh engine build, ~20 ms+), so the budget always runs out
            # while the slot is still down.
            with pytest.raises(DeadlineExceeded):
                cluster.infer(feeds, session_key="late", deadline_ms=8.0,
                              on_worker_lost="replay")
            assert _wait_recovered(cluster, 0)  # the slot still comes back


class TestLifecycle:
    def test_closed_cluster_refuses_submissions(self, net, feeds):
        cluster = Cluster(net, ClusterConfig(
            workers=2, metrics=MetricsRegistry()))
        cluster.close()
        cluster.close()  # idempotent
        with pytest.raises(RuntimeError):
            cluster.infer(feeds)

    def test_health_reports_every_slot(self, net):
        with Cluster(net, ClusterConfig(
                workers=3, metrics=MetricsRegistry())) as cluster:
            health = cluster.health()
            assert sorted(health) == [0, 1, 2]
            assert all(health[s]["up"] for s in health)
            assert all(health[s]["queue_depth"] == 0 for s in health)
