"""End-to-end observability tests: spans through the whole engine.

Covers the acceptance criteria of the observability subsystem: Chrome
trace export is schema-valid and properly nested, a traced run covers
every pre-inference stage and every executed operator (serial *and*
parallel, on distinct thread lanes), ``run_profiled`` works on the
parallel path, serving spans cover cache/pool/batching, the stats
classes are live views over the metrics registry, the CLI surfaces all
of it, and a disabled tracer costs < 5% of a small-model run loop.
"""

import json
import time

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.ir import GraphBuilder
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    get_tracer,
    save_chrome_trace,
    to_chrome_trace,
    top_ops_report,
    waterfall_report,
)

RNG = np.random.default_rng(7)

PRE_INFERENCE_STAGES = {
    "graph.validate",
    "scheme_selection",
    "backend_selection",
    "create_executions",
    "prepare_executions",
    "memory_plan",
}


def chain_net(hw=16):
    """A small sequential net (serial-execution workhorse)."""
    b = GraphBuilder("chain", seed=3)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=8, kernel=3, activation="relu")
    x = b.depthwise_conv(x, kernel=3)
    x = b.conv(x, oc=8, kernel=1)
    x = b.fc(b.global_avg_pool(x), units=4)
    b.output(b.softmax(x))
    return b.finish()


def branchy_net(hw=16, branches=4):
    """Independent conv branches off one split — real branch parallelism."""
    b = GraphBuilder("branchy", seed=4)
    x = b.input("data", (1, 4 * branches, hw, hw))
    parts = b.split(x, sizes=(4,) * branches, axis=1)
    outs = [b.conv(p, oc=4, kernel=3) for p in parts]
    b.output(b.concat(outs, axis=1))
    return b.finish()


def chain_feed(hw=16):
    return {"data": RNG.standard_normal((1, 3, hw, hw)).astype(np.float32)}


def branchy_feed(hw=16, branches=4):
    return {
        "data": RNG.standard_normal((1, 4 * branches, hw, hw)).astype(np.float32)
    }


class TestSessionTracing:
    def test_pre_inference_stages_covered(self):
        tracer = Tracer()
        Session(chain_net(), SessionConfig(trace=tracer))
        names = {s.name for s in tracer.spans}
        assert "session.prepare" in names
        assert PRE_INFERENCE_STAGES <= names
        prepare = next(s for s in tracer.spans if s.name == "session.prepare")
        assert prepare.args["wall_ms"] > 0
        # stage spans nest inside session.prepare
        for span in tracer.spans:
            if span.name in PRE_INFERENCE_STAGES:
                assert span.depth == prepare.depth + 1
                assert prepare.start_us <= span.start_us
                assert span.end_us <= prepare.end_us + 1.0

    def test_every_op_traced_serial(self):
        tracer = Tracer()
        session = Session(chain_net(), SessionConfig(trace=tracer))
        session.run(chain_feed())
        op_spans = [s for s in tracer.spans if s.category == "op"]
        assert {s.name for s in op_spans} == {n.name for n in session._order}
        for span in op_spans:
            assert span.args["op"]
            assert span.args["backend"]
        run = next(s for s in tracer.spans if s.name == "session.run")
        assert run.args["parallel"] is False

    def test_every_op_traced_parallel_with_distinct_lanes(self):
        tracer = Tracer()
        session = Session(
            branchy_net(),
            SessionConfig(trace=tracer, parallel_branches=True, threads=4),
        )
        session.run(branchy_feed())
        op_spans = [s for s in tracer.spans if s.category == "op"]
        assert {s.name for s in op_spans} == {n.name for n in session._order}
        # genuine parallelism: ops recorded from >= 2 worker threads
        assert len({s.tid for s in op_spans}) >= 2
        run = next(s for s in tracer.spans if s.name == "session.run")
        assert run.args["parallel"] is True

    def test_untraced_session_records_nothing(self):
        session = Session(chain_net())
        session.run(chain_feed())
        assert session.tracer is get_tracer()
        assert len(get_tracer()) == 0  # global default stays empty/disabled


class TestRunProfiled:
    def test_serial_profile_covers_every_op(self):
        session = Session(chain_net())
        outputs, profile = session.run_profiled(chain_feed())
        assert outputs
        assert {p.node for p in profile} == {n.name for n in session._order}
        assert all(p.wall_ms >= 0 for p in profile)

    def test_parallel_profile_has_per_op_rows_and_threads(self):
        """The historical gap: parallel_branches yielded no per-op data."""
        session = Session(
            branchy_net(), SessionConfig(parallel_branches=True, threads=4)
        )
        serial = Session(branchy_net())
        feeds = branchy_feed()
        outputs, profile = session.run_profiled(feeds)
        assert {p.node for p in profile} == {n.name for n in session._order}
        assert all(p.thread is not None for p in profile)
        assert len({p.thread for p in profile}) >= 2
        # and the outputs are still the real outputs
        want = serial.run(feeds)
        for name in want:
            np.testing.assert_allclose(outputs[name], want[name], atol=1e-5)

    def test_profiled_run_leaves_no_trace_when_untraced(self):
        session = Session(chain_net())
        session.run_profiled(chain_feed())
        assert len(get_tracer()) == 0

    def test_profiled_run_uses_session_tracer_when_enabled(self):
        tracer = Tracer()
        session = Session(chain_net(), SessionConfig(trace=tracer))
        mark = tracer.mark()
        _, profile = session.run_profiled(chain_feed())
        assert profile
        assert any(s.category == "op" for s in tracer.spans_since(mark))


class TestChromeTraceExport:
    def _traced(self):
        tracer = Tracer()
        session = Session(
            branchy_net(),
            SessionConfig(trace=tracer, parallel_branches=True, threads=4),
        )
        session.run(branchy_feed())
        return tracer

    def test_schema_well_formed(self):
        tracer = self._traced()
        doc = to_chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(metadata) + len(complete) + len(instants) == len(events)
        lanes = {e["tid"] for e in complete}
        # every lane is announced by a thread_name metadata event
        assert {e["tid"] for e in metadata} >= lanes
        for e in metadata:
            assert e["name"] == "thread_name"
            assert isinstance(e["args"]["name"], str)
        for e in complete:
            assert isinstance(e["name"], str) and e["name"]
            assert isinstance(e["cat"], str)
            assert isinstance(e["ts"], float)
            assert isinstance(e["dur"], float) and e["dur"] >= 0
            assert isinstance(e["tid"], int) and e["tid"] >= 0
            assert e["pid"] == 1
        for e in instants:
            assert e["s"] == "t"
            assert "dur" not in e
        # events are emitted in start-time order
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)
        # lanes are small stable numbers, not raw thread idents
        assert max(lanes) < len(lanes)
        assert len(lanes) >= 2  # parallel run spreads over multiple lanes

    def test_spans_nest_properly_per_lane(self):
        """Complete events on one lane either nest or are disjoint."""
        events = [
            e for e in chrome_trace_events(self._traced()) if e["ph"] == "X"
        ]
        eps = 1.0  # µs tolerance: perf_counter endpoints of adjacent calls
        by_lane = {}
        for e in events:
            by_lane.setdefault(e["tid"], []).append(e)
        for lane_events in by_lane.values():
            for i, a in enumerate(lane_events):
                for b in lane_events[i + 1:]:
                    a0, a1 = a["ts"], a["ts"] + a["dur"]
                    b0, b1 = b["ts"], b["ts"] + b["dur"]
                    overlaps = a0 < b1 - eps and b0 < a1 - eps
                    if overlaps:
                        nested = (
                            (a0 <= b0 + eps and b1 <= a1 + eps)
                            or (b0 <= a0 + eps and a1 <= b1 + eps)
                        )
                        assert nested, (a["name"], b["name"])

    def test_worker_lanes_carry_executor_names(self):
        """Short-lived executor threads must land on labelled lanes: the
        parallel path names its workers ``exec-worker`` so the trace
        shows "exec-worker_0", not "ThreadPoolExecutor-3_0"."""
        events = chrome_trace_events(self._traced())
        names = [
            e["args"]["name"] for e in events if e["ph"] == "M"
        ]
        workers = [n for n in names if n.startswith("exec-worker")]
        assert len(workers) >= 2, names
        assert not any("ThreadPoolExecutor" in n for n in names), names

    def test_prepare_scheme_lanes_carry_executor_names(self):
        """The pre-inference scheme search fans out on named threads."""
        tracer = Tracer()
        session = Session(
            branchy_net(),
            SessionConfig(trace=tracer, threads=4),
        )
        session.run(branchy_feed())
        names = set(tracer.thread_names.values())
        # the fan-out only spawns when there are enough candidates; the
        # invariant that matters is no anonymous executor lane ever leaks
        assert not any("ThreadPoolExecutor" in n for n in names), names

    def test_save_round_trips(self, tmp_path):
        tracer = self._traced()
        path = save_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]

    def test_text_reports(self):
        tracer = self._traced()
        top = top_ops_report(tracer, k=3)
        assert "operators by total wall time" in top
        water = waterfall_report(tracer)
        assert "lane 0" in water and "#" in water
        assert top_ops_report(Tracer()) == "(no 'op' spans recorded)"
        assert waterfall_report(Tracer()) == "(no spans recorded)"


class TestOptimizerTracing:
    def test_pass_spans_recorded(self):
        from repro.converter.optimizer.passes import PassManager

        tracer = Tracer()
        graph = chain_net()
        PassManager(tracer=tracer).run(graph)
        names = {s.name for s in tracer.spans}
        assert "optimizer" in names
        assert "shape_inference" in names
        assert any(n.startswith("pass:") for n in names)

    def test_verified_pass_spans(self):
        from repro.analysis import VerifyingPassManager

        tracer = Tracer()
        graph = chain_net()
        manager = VerifyingPassManager()
        manager.tracer = tracer
        manager.run(graph)
        names = {s.name for s in tracer.spans}
        assert "optimizer.verified" in names


class TestServingObservability:
    def _engine(self, **kwargs):
        from repro.serving import Engine, EngineConfig

        tracer = Tracer()
        metrics = MetricsRegistry()
        config = EngineConfig(
            pool_size=2, use_cache=False, trace=tracer, metrics=metrics, **kwargs
        )
        return Engine(chain_net(), config), tracer, metrics

    def test_engine_spans_and_stats_view(self):
        engine, tracer, metrics = self._engine()
        engine.infer(chain_feed())
        names = {s.name for s in tracer.spans}
        assert "engine.create_session" in names
        assert "engine.infer" in names
        assert "pool.checkout_wait" in names
        # worker sessions inherit the engine tracer: op spans present
        assert any(s.category == "op" for s in tracer.spans)
        # EngineStats is a live view over the registry
        assert engine.stats.metrics is metrics
        assert engine.stats.requests == 1
        assert engine.stats.requests == metrics.counter("engine.requests").value
        assert metrics.counter("pool.checkouts").value == 1
        assert metrics.histogram("pool.wait_ms").count == 1

    def test_cache_hit_miss_instants(self, tmp_path):
        from repro.serving import Engine, EngineConfig

        tracer = Tracer()
        graph = chain_net()
        config = EngineConfig(
            pool_size=2, cache_dir=str(tmp_path), trace=tracer
        )
        engine = Engine(graph, config)
        events = {s.name for s in tracer.spans if s.instant}
        assert "cache.miss" in events  # first worker cold
        assert "cache.hit" in events   # second worker warm
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.hit_rate == 0.5
        assert "prepare" in engine.stats.describe()

    def test_batcher_spans_and_stats_view(self):
        engine, tracer, metrics = self._engine(
            batching=True, max_batch=4, batch_timeout_ms=20.0
        )
        with engine:
            results = engine.infer_many(
                [chain_feed() for _ in range(8)], clients=4
            )
        assert len(results) == 8
        names = {s.name for s in tracer.spans}
        assert "batch.run" in names
        assert "batch.assemble" in names
        assert "batch.split" in names
        stats = engine.batcher.stats
        assert stats.metrics is metrics
        assert stats.requests == 8
        assert stats.batches >= 1
        assert stats.requests == metrics.counter("batch.requests").value
        assert metrics.histogram("batch.size").count == stats.batches


class TestOverheadGuard:
    def test_disabled_tracer_overhead_under_5_percent(self):
        """The per-op cost of disabled-tracer hooks must stay under 5% of
        a small-model run loop.

        Measured structurally rather than as an A/B wall-clock diff (which
        flakes on shared hosts): the disabled tracer's per-op work is at
        most one ``span()`` call + one ``record()`` call; we price those
        directly, scale by ops-per-run, and compare against the measured
        run time.
        """
        session = Session(chain_net())
        feeds = chain_feed()
        session.run(feeds)  # warm-up
        repeats = 10
        start = time.perf_counter()
        for _ in range(repeats):
            session.run(feeds)
        run_ms = (time.perf_counter() - start) * 1000.0 / repeats

        tracer = Tracer(enabled=False)
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            tracer.span("op", "op")
            tracer.record("op", "op", 0.0, 0.0)
        per_op_ms = (time.perf_counter() - start) * 1000.0 / calls

        n_ops = len(session._order)
        overhead_ms = per_op_ms * n_ops
        assert overhead_ms < 0.05 * run_ms, (
            f"disabled tracer would add {overhead_ms:.4f} ms to a "
            f"{run_ms:.3f} ms run ({overhead_ms / run_ms * 100:.1f}%)"
        )


class TestCli:
    @pytest.fixture
    def model_path(self, tmp_path):
        from repro.ir import save_model

        path = str(tmp_path / "net.rmnn")
        save_model(chain_net(), path)
        return path

    def test_cli_trace(self, model_path, tmp_path, capsys):
        from repro.tools.cli import main

        out = str(tmp_path / "trace.json")
        assert main(["trace", model_path, "-o", out, "--threads", "2",
                     "--waterfall"]) == 0
        captured = capsys.readouterr().out
        assert "wrote" in captured and "thread lanes" in captured
        with open(out) as fh:
            doc = json.load(fh)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "session.prepare" in names
        assert "session.run" in names

    def test_cli_metrics(self, model_path, tmp_path, capsys):
        from repro.tools.cli import main

        out = str(tmp_path / "metrics.json")
        assert main(["metrics", model_path, "--runs", "2", "-o", out]) == 0
        captured = capsys.readouterr().out
        assert "session.run_ms" in captured
        with open(out) as fh:
            snap = json.load(fh)
        assert snap["counters"]["session.runs"] == 2

    def test_cli_serve_selftest_prints_metrics(self, model_path, tmp_path, capsys):
        from repro.tools.cli import main

        trace_out = str(tmp_path / "serve.json")
        assert main([
            "serve", model_path, "--requests", "4", "--clients", "2",
            "--pool", "2", "--threads", "1", "--no-cache", "--selftest",
            "--trace", trace_out,
        ]) == 0
        captured = capsys.readouterr().out
        assert "selftest:   ok" in captured
        assert "metrics:" in captured
        assert "engine.requests" in captured
        with open(trace_out) as fh:
            names = {e["name"] for e in json.load(fh)["traceEvents"]}
        assert "engine.infer" in names
        assert "engine.create_session" in names


@pytest.mark.trace_self
class TestTraceSelf:
    """Trace the repo's own zoo models end-to-end (mirrors lint_self)."""

    @pytest.mark.parametrize("name", ["mobilenet_v1", "squeezenet_v1.1"])
    def test_zoo_model_traces_cleanly(self, name):
        from repro.analysis.verify_passes import random_feeds
        from repro.models import build_model

        graph = build_model(name, input_size=32)
        tracer = Tracer()
        session = Session(graph, SessionConfig(trace=tracer, threads=2))
        session.run(random_feeds(graph))
        names = {s.name for s in tracer.spans}
        assert "session.prepare" in names and "session.run" in names
        op_spans = [s for s in tracer.spans if s.category == "op"]
        assert {s.name for s in op_spans} == {n.name for n in session._order}
        # the trace is exportable as-is
        events = chrome_trace_events(tracer)
        assert len(events) == len(tracer.spans) + len({s.tid for s in tracer.spans})
