"""Adversarial fixtures for the graph linter: one broken graph per rule.

Each test builds a graph that violates exactly one static invariant
(bypassing the builder's incremental checks where needed) and asserts the
corresponding rule id fires.  A closing class lints the repo's own model
zoo (`-m lint_self`) to prove the rules are free of false positives.
"""

import numpy as np
import pytest

from repro.analysis import (
    Severity,
    all_rules,
    format_diagnostics,
    has_errors,
    lint_graph,
)
from repro.ir import DataType, Graph, GraphBuilder, Layout, Op, TensorDesc
from repro.ir.graph import Node
from repro.models import build_model
from repro.tools.cli import main


def fired(graph, rule_id):
    """Rule ids raised on ``graph``, asserting ``rule_id`` is among them."""
    rules = {d.rule for d in lint_graph(graph)}
    assert rule_id in rules, f"expected {rule_id!r}, got {sorted(rules)}"
    return rules


def small_valid_graph():
    b = GraphBuilder("ok", seed=7)
    x = b.input("in", (1, 3, 8, 8))
    x = b.conv(x, oc=4, kernel=3, pad_mode="same", activation="relu")
    b.output(b.softmax(b.fc(b.global_avg_pool(x), units=3)))
    return b.finish()


def raw_node(op_type, inputs, outputs, attrs=None, name=None):
    """A Node appended without the builder's incremental inference."""
    return Node(name or outputs[0], op_type, list(inputs), list(outputs),
                dict(attrs or {}))


class TestStructuralRules:
    def test_dangling_input(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.nodes.append(raw_node(Op.RELU, ["ghost"], ["y"]))
        g.mark_output("y")
        fired(g, "dangling-input")

    def test_unproduced_output(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.mark_output("nothing")
        fired(g, "unproduced-output")

    def test_double_producer(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.nodes.append(raw_node(Op.RELU, ["x"], ["y"], name="a"))
        g.nodes.append(raw_node(Op.SIGMOID, ["x"], ["y"], name="b"))
        g.mark_output("y")
        fired(g, "double-producer")

    def test_duplicate_node_name(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.nodes.append(raw_node(Op.RELU, ["x"], ["y"], name="same"))
        g.nodes.append(raw_node(Op.SIGMOID, ["y"], ["z"], name="same"))
        g.mark_output("z")
        fired(g, "duplicate-node-name")

    def test_output_shadowing(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.nodes.append(raw_node(Op.RELU, ["x"], ["x"], name="shadow"))
        g.mark_output("x")
        fired(g, "output-shadowing")

    def test_cycle(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.nodes.append(raw_node(Op.ADD, ["x", "b"], ["a"]))
        g.nodes.append(raw_node(Op.RELU, ["a"], ["b"]))
        g.mark_output("b")
        fired(g, "cycle")


class TestReachabilityRules:
    def test_dead_node(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.add_node(Op.RELU, ["x"], ["y"])
        g.add_node(Op.SIGMOID, ["x"], ["unused"])
        g.mark_output("y")
        diags = lint_graph(g)
        dead = [d for d in diags if d.rule == "dead-node"]
        assert len(dead) == 1 and dead[0].node == "unused"
        assert dead[0].severity is Severity.WARNING

    def test_unused_constant(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.add_constant("w", np.zeros((4, 4), np.float32))
        g.add_node(Op.RELU, ["x"], ["y"])
        g.mark_output("y")
        fired(g, "unused-constant")


class TestDescriptorRules:
    def test_shape_mismatch_stale_descriptor(self):
        g = small_valid_graph()
        conv_out = g.nodes[0].outputs[0]
        old = g.tensor_descs[conv_out]
        g.tensor_descs[conv_out] = TensorDesc(conv_out, (1, 4, 2, 2), old.dtype)
        fired(g, "shape-mismatch")

    def test_shape_mismatch_on_inference_failure(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        # 9x9 window cannot sweep an 8x8 input without padding
        g.nodes.append(raw_node(Op.MAX_POOL, ["x"], ["y"],
                                {"kernel": (9, 9), "pad_mode": "valid"}))
        g.mark_output("y")
        fired(g, "shape-mismatch")

    def test_dtype_mismatch_across_binary_edge(self):
        g = Graph()
        g.add_input("x", (1, 4), DataType.FLOAT32)
        g.add_constant("c", np.zeros((1, 4), np.int32))
        g.add_node(Op.ADD, ["x", "c"], ["y"])
        g.mark_output("y")
        fired(g, "dtype-mismatch")

    def test_layout_mismatch_nc4hw4_rank(self):
        g = small_valid_graph()
        name = g.outputs[0]
        g.tensor_descs[name] = TensorDesc(
            name, g.tensor_descs[name].shape, layout=Layout.NC4HW4
        )
        fired(g, "layout-mismatch")

    def test_layout_mismatch_spatial_op_fed_nc(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.tensor_descs["x"] = TensorDesc("x", (1, 4, 8, 8), layout=Layout.NC)
        g.add_constant("w", np.zeros((4, 4, 3, 3), np.float32))
        g.nodes.append(raw_node(Op.CONV2D, ["x", "w"], ["y"],
                                {"kernel": (3, 3), "has_bias": False}))
        g.mark_output("y")
        fired(g, "layout-mismatch")

    def test_layout_mismatch_mixed_binary_inputs(self):
        g = Graph()
        g.add_input("a", (1, 4, 8, 8))
        g.add_input("b", (1, 4, 8, 8))
        g.tensor_descs["b"] = TensorDesc("b", (1, 4, 8, 8), layout=Layout.NC4HW4)
        g.add_node(Op.ADD, ["a", "b"], ["y"])
        g.mark_output("y")
        fired(g, "layout-mismatch")


class TestAttrAndQuantRules:
    def test_attr_domain_zero_stride(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add_constant("w", np.zeros((4, 4, 3, 3), np.float32))
        g.nodes.append(raw_node(Op.CONV2D, ["x", "w"], ["y"],
                                {"kernel": (3, 3), "stride": (0, 1),
                                 "has_bias": False}))
        g.mark_output("y")
        fired(g, "attr-domain")

    def test_attr_domain_groups_do_not_divide(self):
        g = Graph()
        g.add_input("x", (1, 6, 8, 8))
        g.add_constant("w", np.zeros((8, 1, 3, 3), np.float32))
        g.nodes.append(raw_node(Op.CONV2D, ["x", "w"], ["y"],
                                {"kernel": (3, 3), "groups": 4,
                                 "has_bias": False}))
        g.mark_output("y")
        fired(g, "attr-domain")

    def test_attr_domain_negative_pad(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.nodes.append(raw_node(Op.MAX_POOL, ["x"], ["y"],
                                {"kernel": (2, 2), "pad": (-1, 0, 0, 0)}))
        g.mark_output("y")
        fired(g, "attr-domain")

    def test_attr_domain_bad_dropout_ratio(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.nodes.append(raw_node(Op.DROPOUT, ["x"], ["y"], {"ratio": 1.5}))
        g.mark_output("y")
        fired(g, "attr-domain")

    def test_quant_boundary_int8_into_softmax(self):
        g = Graph()
        g.add_input("x", (1, 8), DataType.INT8)
        g.add_node(Op.SOFTMAX, ["x"], ["y"])
        g.mark_output("y")
        diags = lint_graph(g)
        hits = [d for d in diags if d.rule == "quant-boundary"
                and d.severity is Severity.ERROR]
        assert hits and "Dequantize" in (hits[0].hint or "")

    def test_quant_boundary_int8_weights_without_scales(self):
        g = Graph()
        g.add_input("x", (1, 4, 8, 8))
        g.add_constant("w", np.zeros((4, 4, 3, 3), np.int8))
        g.nodes.append(raw_node(Op.CONV2D, ["x", "w"], ["y"],
                                {"kernel": (3, 3), "has_bias": False}))
        g.mark_output("y")
        fired(g, "quant-boundary")

    def test_quant_boundary_double_quantize_warns(self):
        g = Graph()
        g.add_input("x", (1, 8), DataType.INT8)
        g.nodes.append(raw_node(Op.QUANTIZE, ["x"], ["y"], {"scale": 0.1}))
        g.mark_output("y")
        diags = [d for d in lint_graph(g) if d.rule == "quant-boundary"]
        assert any(d.severity is Severity.WARNING for d in diags)


class TestLintDriver:
    def test_rule_registry_has_the_advertised_rules(self):
        ids = {r.rule_id for r in all_rules()}
        assert {"dangling-input", "double-producer", "cycle", "shape-mismatch",
                "dtype-mismatch", "layout-mismatch", "attr-domain",
                "quant-boundary", "dead-node"} <= ids
        assert len(ids) >= 12

    def test_rule_subset_selection(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.add_constant("unused", np.zeros(1, np.float32))
        g.add_node(Op.RELU, ["x"], ["y"])
        g.mark_output("y")
        only = lint_graph(g, rules=["dead-node"])
        assert all(d.rule == "dead-node" for d in only)

    def test_clean_graph_is_clean(self):
        assert lint_graph(small_valid_graph()) == []

    def test_errors_sort_before_warnings(self):
        g = Graph()
        g.add_input("x", (1, 4))
        g.add_constant("unused", np.zeros(1, np.float32))   # warning
        g.nodes.append(raw_node(Op.RELU, ["ghost"], ["y"]))  # error
        g.mark_output("y")
        diags = lint_graph(g)
        assert diags[0].severity is Severity.ERROR
        assert diags[-1].severity is Severity.WARNING


@pytest.mark.lint_self
class TestLintSelf:
    """The linter must give the repo's own model zoo a clean bill."""

    @pytest.mark.parametrize("name,kwargs", [
        ("mobilenet_v1", {"input_size": 64}),
        ("mobilenet_v2", {"input_size": 64}),
        ("resnet18", {"input_size": 64}),
        ("squeezenet_v1.1", {"input_size": 64}),
        ("inception_v3", {}),
        ("tiny_transformer", {}),
        ("lstm_classifier", {}),
    ])
    def test_builtin_models_lint_clean(self, name, kwargs):
        diags = lint_graph(build_model(name, **kwargs))
        assert not has_errors(diags), format_diagnostics(diags)


class TestLintCli:
    @pytest.fixture()
    def model_path(self, tmp_path):
        from repro.ir import save_model

        path = str(tmp_path / "m.rmnn")
        save_model(build_model("squeezenet_v1.1", input_size=32, classes=5), path)
        return path

    def test_lint_clean_model_exits_zero(self, model_path, capsys):
        assert main(["lint", model_path]) == 0
        out = capsys.readouterr().out
        assert "no problems" in out and "memcheck" in out

    def test_lint_strict_flag_accepted(self, model_path):
        assert main(["lint", model_path, "--strict"]) == 0

    def test_invalid_model_reports_diagnostics_not_traceback(self, tmp_path, capsys):
        from repro.ir import save_model

        g = Graph("broken")
        g.add_input("x", (1, 4))
        g.nodes.append(raw_node(Op.RELU, ["ghost"], ["y"]))
        g.mark_output("y")
        g.mark_output("never")
        path = str(tmp_path / "broken.rmnn")
        save_model(g, path)
        assert main(["lint", path]) == 1
        err = capsys.readouterr().err
        assert "error[dangling-input]" in err
        assert "error[unproduced-output]" in err
        assert "Traceback" not in err
