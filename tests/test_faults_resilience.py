"""Resilience-layer tests: deadlines, retries, the circuit breaker, and
the recovery paths wired through session, pool, batcher, cache and engine.

The recurring assertion is the robustness contract: whatever the fault
plan throws, a degraded response must be *bit-identical* to the
fault-free run (CPU re-dispatch preserves schemes; the numeric fallback
is the direct scheme, compared against a direct-scheme gold)."""

import random
import threading
import time

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.core.schemes import SchemeDecision
from repro.faults import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FatalFault,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PoolTimeout,
    ResilienceError,
    TransientFault,
    retry_transient,
)
from repro.ir import GraphBuilder
from repro.obs import Tracer
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics

RNG = np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


def tiny_net(hw=16):
    b = GraphBuilder("tiny", seed=2)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=8, kernel=3, activation="relu", name="conv1")
    x = b.conv(x, oc=8, kernel=1, name="conv2")
    x = b.fc(b.global_avg_pool(x), units=4)
    b.output(b.softmax(x))
    return b.finish()


def tiny_feed(hw=16):
    return {"data": RNG.standard_normal((1, 3, hw, hw)).astype(np.float32)}


class TestDeadline:
    def test_from_ms_none_propagates(self):
        assert Deadline.from_ms(None) is None
        assert isinstance(Deadline.from_ms(5.0), Deadline)

    def test_fresh_budget_not_expired(self):
        d = Deadline(1000.0)
        assert not d.expired
        assert d.remaining_s() > 0.5
        d.check("anywhere")  # must not raise

    def test_expired_check_raises_with_context(self):
        d = Deadline(0.0)
        time.sleep(0.001)
        assert d.expired
        with pytest.raises(DeadlineExceeded) as info:
            d.check("pool.checkout")
        assert info.value.where == "pool.checkout"
        assert info.value.elapsed_ms >= info.value.budget_ms
        assert isinstance(info.value, ResilienceError)

    def test_remaining_clamped_at_zero(self):
        d = Deadline(0.0)
        time.sleep(0.001)
        assert d.remaining_s() == 0.0


class TestRetryTransient:
    def test_retries_then_succeeds_and_counts(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("kernel.execute", "transient", 0)
            return "ok"

        assert retry_transient(flaky, retries=3, base_delay_ms=0.01) == "ok"
        assert len(calls) == 3
        assert get_metrics().value("retry.attempts") == 2

    def test_exhaustion_reraises_last_error(self):
        def always():
            raise TransientFault("pool.checkout", "transient", 0)

        with pytest.raises(TransientFault):
            retry_transient(always, retries=2, base_delay_ms=0.01)
        assert get_metrics().value("retry.attempts") == 2

    def test_non_transient_passes_through_uncounted(self):
        def fatal():
            raise FatalFault("kernel.execute", "fatal", 0)

        with pytest.raises(FatalFault):
            retry_transient(fatal, retries=5, base_delay_ms=0.01)
        assert get_metrics().value("retry.attempts") == 0

    def test_custom_transient_tuple(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError("blip")
            return 7

        assert retry_transient(
            flaky, retries=1, base_delay_ms=0.01, transient=(OSError,)
        ) == 7

    def test_deadline_bounds_backoff(self):
        d = Deadline(30.0)

        def always():
            raise TransientFault("pool.checkout", "transient", 0)

        start = time.perf_counter()
        with pytest.raises((TransientFault, DeadlineExceeded)):
            retry_transient(always, retries=50, base_delay_ms=10.0, deadline=d)
        assert (time.perf_counter() - start) < 1.0

    def test_jitter_rng_reproducible(self):
        def timings(seed):
            rng = random.Random(seed)
            draws = []
            orig = rng.random

            def spy():
                value = orig()
                draws.append(value)
                return value

            rng.random = spy
            with pytest.raises(TransientFault):
                retry_transient(
                    lambda: (_ for _ in ()).throw(
                        TransientFault("pool.checkout", "transient", 0)
                    ),
                    retries=3, base_delay_ms=0.01, rng=rng,
                )
            return draws

        assert timings(5) == timings(5)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=threshold, cooldown_s=cooldown,
            clock=lambda: clock[0], name="sim",
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert get_metrics().value("breaker.opens") == 1
        assert get_metrics().value("breaker.opens.sim") == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_short_circuits_and_counts(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert get_metrics().value("breaker.short_circuits") == 2

    def test_half_open_single_probe_then_close(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock[0] += 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # concurrent calls keep waiting
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_restarts_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock[0] += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] += 5.0
        assert not breaker.allow()
        clock[0] += 5.0
        assert breaker.allow()

    def test_zero_cooldown_every_call_probes(self):
        breaker, _ = self.make(cooldown=0.0)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(5):
            assert breaker.allow()
        assert get_metrics().value("breaker.short_circuits") == 0


class TestSessionResilience:
    def test_dispatch_fatal_falls_back_bit_identical(self):
        graph = tiny_net()
        feeds = tiny_feed()
        gold = Session(graph).run(feeds)

        plan = FaultPlan([FaultRule("backend.dispatch", "fatal", times=1)])
        tracer = Tracer()
        out = Session(
            graph, SessionConfig(faults=plan, trace=tracer)
        ).run(feeds)
        assert plan.injected == 1
        assert get_metrics().value("fallback.ops") == 1
        for key in gold:
            assert np.array_equal(out[key], gold[key])
        assert any(s.name == "fallback.op" for s in tracer.spans)

    def test_kernel_transient_retried_away(self):
        graph = tiny_net()
        feeds = tiny_feed()
        gold = Session(graph).run(feeds)

        plan = FaultPlan([FaultRule("kernel.execute", "transient", times=2)])
        out = Session(graph, SessionConfig(faults=plan)).run(feeds)
        assert plan.injected == 2
        assert get_metrics().value("retry.attempts") == 2
        assert get_metrics().value("fallback.ops") == 0
        for key in gold:
            assert np.array_equal(out[key], gold[key])

    def test_breaker_demotes_after_repeated_fatals(self):
        graph = tiny_net()
        feeds = tiny_feed()
        gold = Session(graph).run(feeds)

        plan = FaultPlan([FaultRule("backend.dispatch", "fatal", times=8)])
        session = Session(graph, SessionConfig(
            faults=plan, breaker_threshold=2, breaker_cooldown_s=0.0,
        ))
        out = session.run(feeds)
        assert get_metrics().value("breaker.opens") >= 1
        for key in gold:
            assert np.array_equal(out[key], gold[key])
        # books stay balanced: every fired fault became an op fallback
        assert plan.injected == get_metrics().value("fallback.ops")

    def test_numeric_guard_reruns_winograd_on_direct_scheme(self):
        graph = tiny_net()
        feeds = tiny_feed()
        wino = {"conv1": SchemeDecision(kind="winograd", winograd_n=2)}
        direct = {"conv1": SchemeDecision(kind="sliding")}
        gold = Session(
            graph, SessionConfig(scheme_overrides=direct)
        ).run(feeds)

        plan = FaultPlan([FaultRule(
            "kernel.execute", "nan",
            match={"scheme": ("winograd", "winograd_rect")}, times=1,
        )])
        tracer = Tracer()
        out = Session(graph, SessionConfig(
            scheme_overrides=wino, faults=plan, trace=tracer,
        )).run(feeds)
        assert plan.injected == 1
        assert get_metrics().value("fallback.numeric") == 1
        for key in gold:
            assert np.isfinite(out[key]).all()
            assert np.array_equal(out[key], gold[key])
        instants = [s for s in tracer.spans if s.name == "numeric_fallback"]
        assert len(instants) == 1

    def test_injected_nan_without_alternative_reruns_original(self):
        graph = tiny_net()
        feeds = tiny_feed()
        gold = Session(graph).run(feeds)

        # Poison the FC op (no direct-scheme alternative without
        # Strassen): the guard re-runs the original execution, which is
        # clean because the corruption was injected post-hoc.
        plan = FaultPlan([FaultRule(
            "kernel.execute", "nan", match={"op": "FullyConnected"}, times=1,
        )])
        out = Session(graph, SessionConfig(faults=plan)).run(feeds)
        assert plan.injected == 1
        assert get_metrics().value("fallback.numeric") == 1
        for key in gold:
            assert np.array_equal(out[key], gold[key])

    def test_resilience_off_lets_faults_escape(self):
        plan = FaultPlan([FaultRule("kernel.execute", "fatal", times=1)])
        session = Session(
            tiny_net(), SessionConfig(faults=plan, resilience=False)
        )
        with pytest.raises(FatalFault):
            session.run(tiny_feed())

    def test_resize_rolls_back_under_injected_prepare_fault(self):
        graph = tiny_net()
        feeds = tiny_feed()
        # skip=1 spares construction; the first resize hits the fault.
        plan = FaultPlan([FaultRule("session.prepare", "fatal", skip=1, times=1)])
        session = Session(graph, SessionConfig(faults=plan))
        gold = session.run(feeds)

        with pytest.raises(FatalFault):
            session.resize({"data": (1, 3, 32, 32)})
        # the old shape must still serve, bit-identically
        out = session.run(feeds)
        for key in gold:
            assert np.array_equal(out[key], gold[key])
        # and a later fault-free resize works
        session.resize({"data": (1, 3, 32, 32)})
        session.run({"data": np.zeros((1, 3, 32, 32), np.float32)})

    def test_run_deadline_zero_raises(self):
        session = Session(tiny_net())
        with pytest.raises(DeadlineExceeded):
            session.run(tiny_feed(), deadline=Deadline(0.0))


class TestPoolResilience:
    def test_checkout_transient_retried(self):
        from repro.serving.pool import SessionPool

        graph = tiny_net()
        plan = FaultPlan([FaultRule("pool.checkout", "transient", times=2)])
        pool = SessionPool(lambda: Session(graph), size=1, faults=plan)
        with pool.acquire() as session:
            assert session is not None
        assert plan.injected == 2
        assert get_metrics().value("retry.attempts") == 2

    def test_checkout_exhaustion_escalates(self):
        from repro.serving.pool import SessionPool

        graph = tiny_net()
        plan = FaultPlan([FaultRule("pool.checkout", "transient")])
        pool = SessionPool(lambda: Session(graph), size=1, faults=plan, retries=2)
        with pytest.raises(TransientFault):
            with pool.acquire():
                pass

    def test_empty_pool_times_out_typed(self):
        from repro.serving.pool import SessionPool

        graph = tiny_net()
        pool = SessionPool(lambda: Session(graph), size=1)
        with pool.acquire():
            with pytest.raises(PoolTimeout) as info:
                with pool.acquire(timeout=0.05):
                    pass
        assert info.value.size == 1
        assert info.value.idle == 0
        assert info.value.wait_s >= 0.04

    def test_deadline_beats_timeout(self):
        from repro.serving.pool import SessionPool

        graph = tiny_net()
        pool = SessionPool(lambda: Session(graph), size=1)
        with pool.acquire():
            deadline = Deadline(30.0)
            with pytest.raises(DeadlineExceeded):
                with pool.acquire(timeout=10.0, deadline=deadline):
                    pass


class TestBatcherResilience:
    def _engine(self, plan, max_batch=4):
        from repro.serving.engine import Engine, EngineConfig

        return Engine(tiny_net(), EngineConfig(
            session=SessionConfig(breaker_cooldown_s=0.0),
            pool_size=1, use_cache=False,
            batching=True, max_batch=max_batch, batch_timeout_ms=200.0,
            faults=plan, metrics=get_metrics(),
        ))

    def test_bisect_isolates_poison_batch(self):
        gold_session = Session(tiny_net())
        requests = [tiny_feed() for _ in range(4)]
        golds = [gold_session.run(f) for f in requests]

        # budget 7 = full bisect cascade of a 4-batch: 4+2+2 then singles
        plan = FaultPlan([FaultRule("batch.assemble", "fatal", times=7)])
        with self._engine(plan) as engine:
            futures = [engine.batcher.submit(f) for f in requests]
            failures = []
            for future in futures:
                try:
                    future.result(timeout=30.0)
                except InjectedFault as exc:
                    failures.append(exc)
            # 7 faults kill the 4-batch, both 2-batches and all singles
            assert len(failures) == 4
            for exc in failures:
                assert exc.batch_members == 1  # failed alone
                assert hasattr(exc, "batch_bucket")
        # 3 bisection retries (one per failed multi-member batch) and 4
        # isolated failures absorb all 7 faults.
        assert get_metrics().value("retry.attempts") == 3
        assert get_metrics().value("faults.isolated") == 4
        assert plan.injected == 7

        # The engine is still serving, bit-identically.
        with self._engine(FaultPlan()) as engine:
            for feeds, gold in zip(requests, golds):
                out = engine.batcher.submit(feeds).result(timeout=30.0)
                for key in gold:
                    assert np.array_equal(out[key], gold[key])

    def test_partial_poison_other_requests_survive(self):
        gold_session = Session(tiny_net())
        requests = [tiny_feed() for _ in range(4)]
        golds = [gold_session.run(f) for f in requests]

        # 3 faults: the 4-batch and one 2-batch fail, one single fails;
        # the sibling single and the other half succeed on retry.
        plan = FaultPlan([FaultRule("batch.assemble", "fatal", times=3)])
        with self._engine(plan) as engine:
            futures = [engine.batcher.submit(f) for f in requests]
            served, failed = 0, 0
            for future, gold in zip(futures, golds):
                try:
                    out = future.result(timeout=30.0)
                except InjectedFault:
                    failed += 1
                else:
                    served += 1
                    for key in gold:
                        assert np.array_equal(out[key], gold[key])
        assert failed == 1 and served == 3
        assert get_metrics().value("faults.isolated") == 1
        assert get_metrics().value("retry.attempts") == 2

    def test_base_exception_not_delivered_to_futures(self, monkeypatch):
        # A KeyboardInterrupt in the dispatcher must not be swallowed
        # into a future like an op failure: pending requests get a
        # RuntimeError and the interrupt re-raises in the dispatcher
        # (whose excepthook we silence for the test).
        from repro.serving.batching import MicroBatcher

        monkeypatch.setattr(threading, "excepthook", lambda args: None)
        session = Session(tiny_net())

        def interrupted(feeds, deadline=None):
            raise KeyboardInterrupt

        session.run = interrupted
        batcher = MicroBatcher(lambda: session, max_batch=1, timeout_ms=1.0)
        future = batcher.submit(tiny_feed())
        with pytest.raises(RuntimeError, match="interrupted"):
            future.result(timeout=30.0)


class TestCacheResilience:
    def _engine(self, tmp_path, plan=None):
        from repro.serving.engine import Engine, EngineConfig

        return Engine(tiny_net(), EngineConfig(
            pool_size=1, use_cache=True, cache_dir=str(tmp_path),
            faults=plan if plan is not None else FaultPlan(),
            metrics=get_metrics(),
        ))

    def test_truncated_entry_recomputed(self, tmp_path):
        feeds = tiny_feed()
        with self._engine(tmp_path) as engine:
            gold = engine.infer(feeds)
        entries = list(tmp_path.glob("*.json"))
        assert entries
        for entry in entries:
            payload = entry.read_bytes()
            entry.write_bytes(payload[: len(payload) // 2])

        with self._engine(tmp_path) as engine:
            out = engine.infer(feeds)
        assert get_metrics().value("cache.corrupt") >= 1
        for key in gold:
            assert np.array_equal(out[key], gold[key])

    def test_garbage_entry_recomputed(self, tmp_path):
        with self._engine(tmp_path) as engine:
            engine.infer(tiny_feed())
        for entry in tmp_path.glob("*.json"):
            entry.write_text('{"schema": "not-a-cache-entry"}')
        with self._engine(tmp_path) as engine:
            engine.infer(tiny_feed())
        assert get_metrics().value("cache.corrupt") >= 1

    def test_torn_store_then_clean_reload(self, tmp_path):
        feeds = tiny_feed()
        plan = FaultPlan([FaultRule("cache.store", "torn", times=1)])
        with self._engine(tmp_path, plan) as engine:
            gold = engine.infer(feeds)
        assert plan.injected == 1
        assert get_metrics().value("fallback.cache") == 1

        # Next process finds the truncated entry, recovers, re-stores.
        with self._engine(tmp_path) as engine:
            out = engine.infer(feeds)
        assert get_metrics().value("cache.corrupt") >= 1
        for key in gold:
            assert np.array_equal(out[key], gold[key])
        # The re-store healed the cache: a third engine loads it clean.
        corrupt_before = get_metrics().value("cache.corrupt")
        with self._engine(tmp_path) as engine:
            engine.infer(feeds)
        assert get_metrics().value("cache.corrupt") == corrupt_before

    def test_load_transient_retried_then_exhausted(self, tmp_path):
        with self._engine(tmp_path) as engine:
            engine.infer(tiny_feed())

        # 2 transients: absorbed by the engine's cache-IO retry loop.
        plan = FaultPlan([FaultRule("cache.load", "transient", times=2)])
        with self._engine(tmp_path, plan) as engine:
            engine.infer(tiny_feed())
        assert get_metrics().value("retry.attempts") == 2
        assert get_metrics().value("fallback.cache") == 0

        # Unlimited transients: retries exhaust, the engine treats the
        # cache as unavailable (fallback.cache) and still serves.
        plan = FaultPlan([FaultRule("cache.load", "transient")])
        with self._engine(tmp_path, plan) as engine:
            engine.infer(tiny_feed())
        assert get_metrics().value("fallback.cache") >= 1


class TestEngineDeadlines:
    def test_expired_deadline_raises_typed(self):
        from repro.serving.engine import Engine, EngineConfig

        with Engine(tiny_net(), EngineConfig(
            pool_size=1, use_cache=False, metrics=get_metrics(),
        )) as engine:
            with pytest.raises(DeadlineExceeded):
                engine.infer(tiny_feed(), deadline_ms=0.0)
            # the engine still serves afterwards
            out = engine.infer(tiny_feed())
            assert out

    def test_config_default_deadline(self):
        from repro.serving.engine import Engine, EngineConfig

        with Engine(tiny_net(), EngineConfig(
            pool_size=1, use_cache=False, deadline_ms=0.0,
            metrics=get_metrics(),
        )) as engine:
            with pytest.raises(DeadlineExceeded):
                engine.infer(tiny_feed())
            out = engine.infer(tiny_feed(), deadline_ms=10_000.0)
            assert out
