"""Tests for graph construction, validation, toposort and the builder."""

import numpy as np
import pytest

from repro.ir import Graph, GraphBuilder, GraphError, Op, get_schema


def tiny_graph():
    g = Graph("t")
    g.add_input("x", (1, 4, 8, 8))
    g.add_constant("w", np.zeros((8, 4, 3, 3), np.float32))
    g.add_node(Op.CONV2D, ["x", "w"], ["y"], {"kernel": (3, 3), "has_bias": False})
    g.add_node(Op.RELU, ["y"], ["z"])
    g.mark_output("z")
    return g


class TestNodeValidation:
    def test_unknown_op_rejected(self):
        g = Graph()
        g.add_input("x", (1,))
        with pytest.raises(KeyError, match="Nope"):
            g.add_node("Nope", ["x"], ["y"])

    def test_arity_checked(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        with pytest.raises(GraphError, match="inputs"):
            g.add_node(Op.CONV2D, ["x"], ["y"], {"kernel": (3, 3)})

    def test_missing_required_attr(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        g.add_constant("w", np.zeros((4, 3, 3, 3), np.float32))
        with pytest.raises(ValueError, match="kernel"):
            g.add_node(Op.CONV2D, ["x", "w"], ["y"], {})

    def test_unknown_attr_rejected(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        with pytest.raises(ValueError, match="bogus"):
            g.add_node(Op.RELU, ["x"], ["y"], {"bogus": 1})

    def test_defaults_applied(self):
        g = tiny_graph()
        conv = g.nodes[0]
        assert conv.attrs["stride"] == (1, 1)
        assert conv.attrs["groups"] == 1


class TestGraphStructure:
    def test_validate_ok(self):
        tiny_graph().validate()

    def test_duplicate_tensor_name(self):
        g = Graph()
        g.add_input("x", (1,))
        with pytest.raises(GraphError, match="duplicate"):
            g.add_input("x", (2,))
        with pytest.raises(GraphError, match="duplicate"):
            g.add_constant("x", np.zeros(1, np.float32))

    def test_undefined_input_caught(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        g.add_node(Op.RELU, ["ghost"], ["y"])
        g.mark_output("y")
        with pytest.raises(GraphError, match="undefined"):
            g.validate()

    def test_unproduced_output_caught(self):
        g = Graph()
        g.add_input("x", (1,))
        g.mark_output("nothing")
        with pytest.raises(GraphError, match="never produced"):
            g.validate()

    def test_double_producer_caught(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        g.add_node(Op.RELU, ["x"], ["y"])
        g.add_node(Op.SIGMOID, ["x"], ["y"])
        with pytest.raises(GraphError, match="two nodes"):
            g.producer_map()

    def test_double_producer_caught_by_validate(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        g.add_node(Op.RELU, ["x"], ["y"])
        g.add_node(Op.SIGMOID, ["x"], ["y"], name="dup")
        g.mark_output("y")
        with pytest.raises(GraphError, match="two nodes"):
            g.validate()

    def test_validate_aggregates_all_problems(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        g.add_node(Op.RELU, ["ghost"], ["y"])
        g.mark_output("y")
        g.mark_output("nothing")
        with pytest.raises(GraphError) as exc_info:
            g.validate()
        exc = exc_info.value
        # One raise reports every problem, as structured diagnostics.
        assert len(exc.diagnostics) >= 2
        rules = {d.rule for d in exc.diagnostics}
        assert {"dangling-input", "unproduced-output"} <= rules
        assert "undefined" in str(exc) and "never produced" in str(exc)

    def test_check_returns_empty_on_valid_graph(self):
        assert tiny_graph().check() == []

    def test_cycle_detected(self):
        g = Graph()
        g.add_input("x", (1, 3, 8, 8))
        g.add_node(Op.ADD, ["x", "b"], ["a"])
        g.add_node(Op.RELU, ["a"], ["b"])
        g.mark_output("b")
        with pytest.raises(GraphError, match="cycle"):
            g.validate()

    def test_toposort_respects_dependencies(self):
        g = tiny_graph()
        # scramble insertion order
        g.nodes.reverse()
        order = [n.name for n in g.toposort()]
        assert order.index("y") < order.index("z")

    def test_consumer_map(self):
        g = tiny_graph()
        consumers = g.consumer_map()
        assert [n.name for n in consumers["y"]] == ["z"]

    def test_op_histogram(self):
        g = tiny_graph()
        assert g.op_histogram() == {Op.CONV2D: 1, Op.RELU: 1}


class TestGraphBuilder:
    def test_builds_valid_graph_with_shapes(self):
        b = GraphBuilder("net", seed=3)
        x = b.input("in", (1, 3, 32, 32))
        x = b.conv(x, oc=16, kernel=3, stride=2, activation="relu")
        x = b.depthwise_conv(x, kernel=3)
        y = b.conv(x, oc=16, kernel=1)
        x = b.add(x, y)
        x = b.global_avg_pool(x)
        x = b.fc(x, units=10)
        b.output(b.softmax(x))
        g = b.finish()
        assert g.desc(g.outputs[0]).shape == (1, 10)

    def test_conv_tracks_channels_incrementally(self):
        b = GraphBuilder()
        x = b.input("in", (1, 5, 16, 16))
        y = b.conv(x, oc=7, kernel=3)
        assert b.graph.desc(y).shape == (1, 7, 16, 16)

    def test_concat_and_pool_shapes(self):
        b = GraphBuilder()
        x = b.input("in", (1, 4, 16, 16))
        a = b.conv(x, oc=8, kernel=1)
        c = b.conv(x, oc=8, kernel=3)
        cat = b.concat([a, c])
        p = b.max_pool(cat, 2)
        b.output(p)
        g = b.finish()
        assert g.desc(cat).shape == (1, 16, 16, 16)
        assert g.desc(p).shape == (1, 16, 8, 8)

    def test_weights_are_seeded_deterministic(self):
        def build():
            b = GraphBuilder("n", seed=11)
            x = b.input("in", (1, 3, 8, 8))
            b.output(b.conv(x, oc=4, kernel=3))
            return b.finish()

        g1, g2 = build(), build()
        for name in g1.constants:
            np.testing.assert_array_equal(g1.constants[name], g2.constants[name])


class TestSchemas:
    def test_conv_mul_count(self):
        schema = get_schema(Op.CONV2D)
        muls = schema.mul_count(
            [(1, 16, 32, 32), (32, 16, 3, 3)],
            (1, 32, 32, 32),
            {"kernel": (3, 3), "groups": 1},
        )
        assert muls == 1 * 32 * 32 * 32 * 16 * 9

    def test_depthwise_mul_count_ignores_ic(self):
        schema = get_schema(Op.DEPTHWISE_CONV2D)
        muls = schema.mul_count(
            [(1, 16, 32, 32), (16, 1, 3, 3)],
            (1, 16, 32, 32),
            {"kernel": (3, 3), "groups": 16},
        )
        assert muls == 16 * 32 * 32 * 9

    def test_activation_is_free(self):
        schema = get_schema(Op.RELU)
        assert schema.mul_count([(1, 8, 4, 4)], (1, 8, 4, 4), {}) == 0
