"""Incremental prepare and the serving-side bugfixes riding with it.

Covers the cold-start tentpole — parallel per-op scheme selection, lazy
execution preparation off the first ``run()``'s critical path, and
memory-plan adaptation across adjacent shape buckets — plus the batcher
EDF starvation fix, the cache corrupt-entry quarantine and the
empty-vs-absent schemes round-trip.
"""

import json
import time

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.core.memory import adapt_plan, compute_lifetimes, plan_memory
from repro.core.schemes import (
    clear_scheme_memo,
    scheme_memo_size,
    select_graph_schemes,
)
from repro.faults import FaultPlan, FaultRule
from repro.ir import GraphBuilder
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.serving import (
    MicroBatcher,
    PreInferenceArtifacts,
    PreInferenceCache,
)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


def conv_net(hw=32):
    """Conv net with several independent 3x3 convs (parallel scheme bait)."""
    b = GraphBuilder("incnet", seed=3)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=8, kernel=3, pad_mode="same", activation="relu")
    x = b.conv(x, oc=8, kernel=3, pad_mode="same", activation="relu")
    x = b.max_pool(x, 2)
    x = b.conv(x, oc=16, kernel=3, pad_mode="same")
    x = b.fc(b.global_avg_pool(x), units=10)
    b.output(b.softmax(x))
    return b.finish()


def conv_free_net():
    """No convs at all: scheme selection has nothing to decide."""
    b = GraphBuilder("fcnet", seed=5)
    x = b.input("data", (2, 12))
    x = b.relu(b.fc(x, units=8))
    b.output(b.fc(x, units=4))
    return b.finish()


def feed(hw=32, batch=1, seed=0):
    rng = np.random.default_rng(seed)
    return {"data": rng.standard_normal((batch, 3, hw, hw)).astype(np.float32)}


class TestParallelSchemeSelection:
    def test_parallel_identical_to_serial(self):
        g = conv_net()
        clear_scheme_memo()
        serial = select_graph_schemes(g)
        clear_scheme_memo()
        fanned = select_graph_schemes(g, workers=4)
        assert serial == fanned

    def test_memo_populates_and_clears(self):
        clear_scheme_memo()
        assert scheme_memo_size() == 0
        select_graph_schemes(conv_net())
        assert scheme_memo_size() > 0
        clear_scheme_memo()
        assert scheme_memo_size() == 0

    def test_session_with_workers_bit_identical(self):
        g = conv_net()
        x = feed()
        gold = Session(g).run(x)
        out = Session(g, SessionConfig(prepare_workers=4)).run(x)
        for name in gold:
            np.testing.assert_array_equal(out[name], gold[name])


class TestLazyPrepare:
    def test_lazy_run_bit_identical(self):
        g = conv_net()
        x = feed()
        gold = Session(g).run(x)
        lazy = Session(g, SessionConfig(lazy_prepare=True))
        out = lazy.run(x)
        for name in gold:
            np.testing.assert_array_equal(out[name], gold[name])
        # Second run reuses the now-fully-prepared executions.
        again = lazy.run(x)
        for name in gold:
            np.testing.assert_array_equal(again[name], gold[name])

    def test_lazy_survives_resize(self):
        g = conv_net()
        lazy = Session(g, SessionConfig(lazy_prepare=True))
        lazy.run(feed())
        lazy.resize({"data": (2, 3, 48, 48)})
        out = lazy.run(feed(hw=48, batch=2))
        gold = Session(conv_net(48))
        gold.resize({"data": (2, 3, 48, 48)})
        want = gold.run(feed(hw=48, batch=2))
        for name in want:
            np.testing.assert_array_equal(out[name], want[name])

    def test_lazy_without_decouple_is_eager(self):
        # lazy_prepare rides the prepare/execute split; with decoupling
        # off it quietly degrades to the eager path.
        g = conv_net()
        session = Session(g, SessionConfig(lazy_prepare=True, decouple=False))
        out = session.run(feed())
        want = Session(g, SessionConfig(decouple=False)).run(feed())
        for name in want:
            np.testing.assert_array_equal(out[name], want[name])


class TestPlanAdaptation:
    def test_adapt_plan_reuses_offsets_when_sizes_shrink(self):
        g = conv_net(48)
        session = Session(g)
        donor = session.memory_plan
        assert donor is not None
        small = conv_net(48)
        shrunk = Session(small)
        shrunk.resize({"data": (1, 3, 32, 32)})
        lifetimes = compute_lifetimes(shrunk.graph, shrunk._order)
        adapted = adapt_plan(donor, lifetimes)
        assert adapted is not None
        assert adapted.arena_bytes == donor.arena_bytes
        assert set(adapted.offsets) == set(donor.offsets)

    def test_adapt_plan_rejects_growth(self):
        g = conv_net(32)
        donor = Session(g).memory_plan
        big = Session(conv_net(32))
        big.resize({"data": (4, 3, 48, 48)})
        lifetimes = compute_lifetimes(big.graph, big._order)
        assert adapt_plan(donor, lifetimes) is None

    def test_shrink_resize_adapts_instead_of_replanning(self):
        session = Session(conv_net())
        x48 = {"data": (1, 3, 48, 48)}
        session.resize(x48)
        grown_arena = session.memory_plan.arena_bytes
        session.resize({"data": (1, 3, 32, 32)})
        # The big plan was kept as donor and re-proven for the small
        # shapes: same arena, no fresh planning pass.
        assert get_metrics().value("session.plan_adapted") >= 1
        assert session.memory_plan.arena_bytes == grown_arena
        out = session.run(feed())
        want = Session(conv_net()).run(feed())
        for name in want:
            np.testing.assert_array_equal(out[name], want[name])

    def test_offer_plan_donor_feeds_next_resize(self):
        big = Session(conv_net())
        big.resize({"data": (1, 3, 48, 48)})
        fresh = Session(conv_net())
        fresh.offer_plan_donor(big.memory_plan)
        before = get_metrics().value("session.plan_adapted")
        fresh.resize({"data": (1, 3, 16, 16)})
        assert get_metrics().value("session.plan_adapted") == before + 1
        out = fresh.run(feed(hw=16))
        want = Session(conv_net(16)).run(feed(hw=16))
        for name in want:
            np.testing.assert_array_equal(out[name], want[name])


class TestBatcherDeadlines:
    def test_second_bucket_not_starved_by_first(self):
        """EDF regression: a bucket opened while the dispatcher camps on
        another must keep its arrival-anchored deadline.

        Pre-fix, the dispatcher picked an arbitrary bucket and restarted
        the full timeout for it from *its own* wait start, so bucket B's
        wall time stacked A's entire window on top of its own.  With
        earliest-deadline-first both fill windows overlap.
        """
        g = conv_net(16)
        timeout_s = 0.3
        t0 = time.monotonic()
        with MicroBatcher(lambda: Session(g), max_batch=4,
                          timeout_ms=timeout_s * 1000.0) as batcher:
            fa = batcher.submit(feed(hw=16, seed=1))
            time.sleep(0.06)
            fb = batcher.submit(feed(hw=24, seed=2))  # distinct bucket
            fa.result(timeout=30)
            fb.result(timeout=30)
            elapsed = time.monotonic() - t0
        # Overlapping windows: everything resolves shortly after the
        # later deadline (~0.36s), nowhere near two stacked timeouts.
        assert elapsed < 2 * timeout_s, (
            f"bucket B starved: {elapsed:.3f}s for two overlapping "
            f"{timeout_s:.1f}s fill windows"
        )
        assert batcher.stats.batches == 2  # shapes never share a batch

    def test_fill_window_anchored_at_first_arrival(self):
        g = conv_net(16)
        timeout_s = 0.3
        t0 = time.monotonic()
        with MicroBatcher(lambda: Session(g), max_batch=8,
                          timeout_ms=timeout_s * 1000.0) as batcher:
            first = batcher.submit(feed(hw=16, seed=1))
            time.sleep(0.1)
            second = batcher.submit(feed(hw=16, seed=2))
            first.result(timeout=30)
            second.result(timeout=30)
            elapsed = time.monotonic() - t0
        # A later arrival must not extend the bucket's fill clock.
        assert elapsed < timeout_s + 0.25
        assert batcher.stats.batches == 1
        assert batcher.stats.batched_requests == 2

    def test_bucket_sessions_share_one_donor_arena(self):
        """Adjacent micro-batch sizes adapt the largest plan instead of
        re-planning: resize 1 -> 4 plans fresh, 4 -> 2 adapts."""
        g = conv_net(16)
        with MicroBatcher(lambda: Session(g), max_batch=4,
                          timeout_ms=20.0) as batcher:
            out4 = batcher.infer(feed(hw=16, batch=4, seed=3))
            assert get_metrics().value("session.plan_adapted") == 0
            out2 = batcher.infer(feed(hw=16, batch=2, seed=4))
            assert get_metrics().value("session.plan_adapted") >= 1
        assert list(out4.values())[0].shape == (4, 10)
        assert list(out2.values())[0].shape == (2, 10)
        serial = Session(conv_net(16))
        for out, batch, seed in ((out4, 4, 3), (out2, 2, 4)):
            serial.resize({"data": (batch, 3, 16, 16)})
            want = serial.run(feed(hw=16, batch=batch, seed=seed))
            for name in want:
                np.testing.assert_array_equal(out[name], want[name])


class TestCacheQuarantine:
    def test_corrupt_entry_unlinked_on_load(self, tmp_path):
        metrics = MetricsRegistry()
        cache = PreInferenceCache(tmp_path, metrics=metrics)
        key = "deadbeef" * 8
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path(key).write_text("{torn", encoding="utf-8")
        assert cache.load(key) is None
        assert not cache.path(key).exists()
        assert metrics.value("cache.corrupt") == 1
        assert metrics.value("cache.quarantined") == 1
        # The second load is a clean miss: no re-parse, no re-count.
        assert cache.load(key) is None
        assert metrics.value("cache.corrupt") == 1

    def test_torn_store_quarantined_at_next_load(self, tmp_path):
        session = Session(conv_net(16))
        artifacts = PreInferenceArtifacts.from_session(session)
        plan = FaultPlan([FaultRule("cache.store", "torn", times=1)])
        torn_writer = PreInferenceCache(tmp_path, faults=plan)
        key = torn_writer.key(session.graph, SessionConfig())
        torn_writer.store(key, artifacts)
        assert torn_writer.path(key).exists()

        metrics = MetricsRegistry()
        reader = PreInferenceCache(tmp_path, metrics=metrics)
        assert reader.load(key) is None          # truncated JSON
        assert not reader.path(key).exists()     # and now quarantined
        assert metrics.value("cache.quarantined") == 1
        # A healing re-store round-trips cleanly afterwards.
        reader.store(key, artifacts)
        reloaded = reader.load(key)
        assert reloaded is not None
        assert reloaded.schemes == artifacts.schemes


class TestEmptySchemesRoundTrip:
    def test_captured_empty_schemes_stay_present(self):
        session = Session(conv_free_net())
        artifacts = PreInferenceArtifacts.from_session(session)
        assert artifacts.schemes == {}  # captured, and correctly empty
        wire = json.loads(json.dumps(artifacts.to_json()))
        assert wire["schemes"] == {}    # not null: coverage, not absence
        restored = PreInferenceArtifacts.from_json(wire)
        assert restored.schemes == {}
        assert restored.apply().schemes == {}

    def test_absent_schemes_stay_absent(self):
        artifacts = PreInferenceArtifacts()
        assert artifacts.schemes is None
        wire = json.loads(json.dumps(artifacts.to_json()))
        assert wire["schemes"] is None
        restored = PreInferenceArtifacts.from_json(wire)
        assert restored.schemes is None
        assert restored.apply().schemes is None

    def test_warm_session_honours_empty_coverage(self):
        g = conv_free_net()
        artifacts = PreInferenceArtifacts.from_session(Session(g))
        warm = Session(conv_free_net(), artifacts=artifacts.apply())
        assert warm.schemes == {}
        x = {"data": np.ones((2, 12), np.float32)}
        want = Session(conv_free_net()).run(x)
        out = warm.run(x)
        for name in want:
            np.testing.assert_array_equal(out[name], want[name])
