"""Consistent-hash ring: determinism, balance, failover order.

The ring is the router's placement function — sessions must keep landing
on the same worker across calls and across router restarts (determinism),
spread evenly across workers (balance), and fail over to a *deterministic*
next choice when their primary is down (so replay after a crash is
reproducible).
"""

import pytest

from repro.cluster import HashRing


class TestDeterminism:
    def test_same_key_same_slot(self):
        ring = HashRing(range(4))
        assert len({ring.assign("sess-a") for _ in range(10)}) == 1

    def test_independent_rings_agree(self):
        # Placement is a pure function of (key, slots, vnodes): a restarted
        # router rebuilds the identical ring and sessions stay put.
        a, b = HashRing(range(4)), HashRing(range(4))
        for i in range(64):
            key = f"sess-{i}"
            assert a.assign(key) == b.assign(key)
            assert a.order(key) == b.order(key)

    def test_vnodes_change_placement_contract(self):
        # Different vnode counts are different rings; the constructor
        # arguments are part of the placement contract.
        a, b = HashRing(range(4), vnodes=16), HashRing(range(4), vnodes=64)
        assert any(a.assign(f"k{i}") != b.assign(f"k{i}") for i in range(64))


class TestBalance:
    def test_keys_spread_over_all_slots(self):
        ring = HashRing(range(4))
        counts = {s: 0 for s in range(4)}
        n = 512
        for i in range(n):
            counts[ring.assign(f"session-{i}")] += 1
        assert all(c > 0 for c in counts.values())
        # sha256 vnodes keep the spread loose but real: no slot owns
        # more than half the keyspace at 4 workers.
        assert max(counts.values()) < n // 2

    def test_order_is_a_permutation(self):
        ring = HashRing(range(5))
        for i in range(32):
            order = ring.order(f"k{i}")
            assert sorted(order) == [0, 1, 2, 3, 4]


class TestFailover:
    def test_assign_skips_dead_slots(self):
        ring = HashRing(range(4))
        key = "sess-x"
        primary = ring.assign(key)
        order = ring.order(key)
        live = {s for s in range(4) if s != primary}
        # With the primary down, placement is the next *live* slot in the
        # key's preference order — deterministic, not least-loaded.
        expected = next(s for s in order if s in live)
        assert ring.assign(key, live=live.__contains__) == expected

    def test_assign_walks_preference_order(self):
        ring = HashRing(range(4))
        key = "sess-y"
        order = ring.order(key)
        for down in range(1, 4):
            live = set(order[down:])
            assert ring.assign(key, live=live.__contains__) == order[down]

    def test_all_dead_falls_back_to_primary(self):
        # No live slot: return the primary anyway (the caller then waits
        # for the supervisor's replacement instead of scattering keys).
        ring = HashRing(range(3))
        assert ring.assign("k", live=lambda s: False) == ring.order("k")[0]

    def test_single_slot_ring(self):
        ring = HashRing([0])
        assert ring.assign("anything") == 0
        assert ring.order("anything") == [0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([0], vnodes=0)
