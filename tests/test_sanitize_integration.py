"""Integration tests: the sanitizer live inside the real stack.

Three claims, each load-bearing for the ``scripts/check.sh`` gate:

1. **Clean code reports clean** — sanitized serving engines (pool +
   micro-batcher under real concurrent clients), sanitized sessions with
   parallel branches, and the sanitized generation stack all finish with
   zero races, zero lock cycles, zero lifecycle findings.
2. **Seeded bugs are caught** — the pre-fix races this PR fixed (the
   ``pool.idle`` gauge lost-update, the silent KV slab use-after-free)
   stay fixed, with regression tests that fail if the old behaviour
   returns; scheduler misuse (concurrent ``run()``) is detected.
3. **Disabled is ~free** — the structural overhead guard holds the
   disabled-mode cost under 10% of a small-model run loop.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.ir import GraphBuilder
from repro.obs.metrics import MetricsRegistry
from repro.sanitize import Sanitizer

pytestmark = pytest.mark.sanitize

RNG = np.random.default_rng(7)


def small_net(hw=16):
    b = GraphBuilder("saninet", seed=3)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=8, kernel=3, pad_mode="same", activation="relu")
    x = b.conv(x, oc=8, kernel=1)
    x = b.fc(b.global_avg_pool(x), units=4)
    b.output(b.softmax(x))
    return b.finish()


def branchy_net(hw=12):
    """Two independent conv branches: real thread-parallel execution."""
    b = GraphBuilder("branchnet", seed=5)
    x = b.input("data", (1, 4, hw, hw))
    left = b.conv(x, oc=8, kernel=3, pad_mode="same", activation="relu")
    right = b.conv(x, oc=8, kernel=1, activation="relu")
    out = b.add(left, right)
    b.output(b.fc(b.global_avg_pool(out), units=3))
    return b.finish()


def feed(graph, seed=0):
    rng = np.random.default_rng(seed)
    name = graph.inputs[0]
    return {name: rng.standard_normal(graph.desc(name).shape).astype(np.float32)}


class TestSanitizedSession:
    def test_parallel_branch_session_is_clean(self):
        g = branchy_net()
        session = Session(g, SessionConfig(decouple=True, threads=2, sanitize=True))
        feeds = feed(g)
        for _ in range(3):
            session.run(feeds)
        report = session.sanitizer.report()
        assert report.ok, report.describe()

    def test_sanitized_output_matches_unsanitized(self):
        g = small_net()
        feeds = feed(g)
        gold = Session(g).run(feeds)
        out = Session(g, SessionConfig(sanitize=True)).run(feeds)
        for k in gold:
            np.testing.assert_array_equal(gold[k], out[k])

    def test_concurrent_runs_on_one_session_are_a_detected_race(self):
        """One Session is documented single-checkout; two threads running
        it concurrently is the bug the ``run_state`` probe exists for.
        The vector clocks never order the two runs (no handoff edge), so
        detection is deterministic — even if the GIL serializes them."""
        g = small_net()
        session = Session(g, SessionConfig(sanitize=True))
        feeds = feed(g)
        barrier = threading.Barrier(2)
        errors = []

        def worker():
            barrier.wait()
            try:
                session.run(feeds)
            except Exception as exc:  # a crash would mask the finding
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        report = session.sanitizer.report()
        assert any("run_state" in r.var for r in report.races), report.describe()


class TestSanitizedServing:
    def test_concurrent_pool_clients_are_clean(self):
        from repro.serving import Engine, EngineConfig

        g = small_net()
        engine = Engine(g, EngineConfig(
            pool_size=3, use_cache=False, sanitize=True,
        ))
        feeds = feed(g)
        gold = Session(g).run(feeds)
        failures = []

        def client():
            for _ in range(4):
                out = engine.infer(feeds)
                for k in gold:
                    if not np.array_equal(out[k], gold[k]):
                        failures.append(k)

        with engine:
            threads = [threading.Thread(target=client) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not failures
        report = engine.sanitizer.report()
        assert report.ok, report.describe()

    def test_pool_idle_gauge_survives_concurrent_churn(self):
        """Regression for the sanitizer's first real find: ``pool.idle``
        was maintained with read-modify-write ``set(qsize())`` from
        concurrent checkouts — lost updates, and a stale final value.
        The fix (atomic ``Gauge.add``) must keep the books exact."""
        from repro.serving import SessionPool

        g = small_net()
        metrics = MetricsRegistry()
        pool = SessionPool(lambda: Session(g), size=3, metrics=metrics)

        def churn():
            for _ in range(25):
                with pool.acquire(timeout=10.0):
                    pass

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.gauge("pool.idle").value == 3  # exact, not approximate

    def test_gauge_add_is_atomic_under_threads(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(0)

        def spin():
            for _ in range(1000):
                gauge.add(1)
                gauge.add(-1)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 0

    def test_concurrent_batched_clients_are_clean(self):
        from repro.serving import Engine, EngineConfig

        g = small_net()
        engine = Engine(g, EngineConfig(
            pool_size=1, use_cache=False, batching=True,
            max_batch=4, batch_timeout_ms=5.0, sanitize=True,
        ))
        feeds = feed(g)
        gold = Session(g).run(feeds)
        mismatches = []

        def client():
            out = engine.infer(feeds)
            for k in gold:
                if not np.allclose(out[k], gold[k], rtol=1e-6, atol=1e-9):
                    mismatches.append(k)

        with engine:
            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not mismatches
        report = engine.sanitizer.report()
        assert report.ok, report.describe()


class TestSanitizedGenai:
    def _engine(self, **overrides):
        from repro.genai import GenerationConfig, GenerationEngine

        kwargs = dict(
            vocab=64, max_seq=24, d_model=16, heads=2, layers=1, seed=11,
            max_batch=2, page_tokens=4, capacity_tokens=64, smallest_bucket=8,
            metrics=MetricsRegistry(), sanitize=True,
        )
        kwargs.update(overrides)
        return GenerationEngine(GenerationConfig(**kwargs))

    def test_generation_stack_is_clean_including_close(self):
        from repro.genai import SamplingParams

        engine = self._engine()
        results = engine.generate(
            [[1, 2, 3], [4, 5], [6]], SamplingParams(max_tokens=6)
        )
        assert all(r.finish_reason in ("length", "stop") for r in results)
        engine.close()  # runs the KV leak check
        report = engine.sanitizer.report()
        assert report.ok, report.describe()

    def test_grown_slab_poisons_the_old_handle(self):
        """Regression (satellite fix): ``grow`` frees the old slab's pages
        while callers may still hold the old ``KVSlab``.  Reading K/V
        through it used to silently return memory that may now belong to
        another sequence; it must raise and record use-after-free."""
        from repro.genai.kvcache import (
            KVCacheAllocator, KVCacheConfig, KVCacheUseAfterFree,
        )

        metrics = MetricsRegistry()
        san = Sanitizer(metrics=metrics)
        alloc = KVCacheAllocator(
            KVCacheConfig(layers=1, heads=2, d_head=4, page_tokens=4,
                          capacity_tokens=64, max_seq=32),
            metrics=metrics, sanitizer=san,
        )
        old = alloc.alloc("s", 4)
        old.k(0)[:] = 1.0
        old.length = 4
        grown = alloc.grow(old, old.capacity + 1)
        assert grown is not old and not grown.freed
        with pytest.raises(KVCacheUseAfterFree):
            old.k(0)
        findings = san.report().lifecycle
        assert any(f.rule == "use-after-free" for f in findings)
        assert metrics.value("sanitize.leaks") >= 1
        alloc.release(grown)

    def test_leaked_slab_reported_at_engine_close(self):
        engine = self._engine()
        engine.allocator.alloc("dangling", 4)  # never released
        engine.close()
        report = engine.sanitizer.report()
        assert any(f.rule == "leak" for f in report.lifecycle)

    def test_retained_kv_slabs_are_not_leaks(self):
        from repro.genai import SamplingParams

        engine = self._engine(retain_kv=True)
        engine.generate([[1, 2, 3]], SamplingParams(max_tokens=4))
        engine.close()
        report = engine.sanitizer.report()
        assert not any(f.rule == "leak" for f in report.lifecycle), (
            "retired (LRU-evictable) slabs must not count as leaks"
        )

    def test_concurrent_scheduler_runs_are_a_detected_race(self):
        engine = self._engine()
        scheduler = engine.scheduler
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            scheduler.run([])  # empty: probes fire, no decode work races

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = engine.sanitizer.report()
        assert any("run_loop" in r.var for r in report.races), report.describe()
        engine.close()


class TestSlabPlanUnderChurn:
    def test_memory_plan_clean_across_100_grow_evict_cycles(self):
        """Satellite: the dynamic allocator's snapshot must stay provably
        alias-free through heavy LRU churn — 100 cycles of alloc, grow,
        retire and pressure-driven eviction, checked by the *independent*
        ``check_slab_plan`` sanitizer each cycle."""
        from repro.analysis.memcheck import check_slab_plan
        from repro.genai.kvcache import KVCacheAllocator, KVCacheConfig, KVCacheOOM

        metrics = MetricsRegistry()
        san = Sanitizer(metrics=metrics)
        config = KVCacheConfig(
            layers=1, heads=2, d_head=4, page_tokens=4,
            capacity_tokens=128, max_seq=32,
        )
        alloc = KVCacheAllocator(config, metrics=metrics, sanitizer=san)
        rng = np.random.default_rng(0)
        for cycle in range(100):
            seq = f"seq-{cycle}"
            try:
                slab = alloc.alloc(seq, int(rng.integers(1, 9)))
            except KVCacheOOM:
                pytest.fail(f"cycle {cycle}: eviction ladder failed to make room")
            if rng.random() < 0.5:
                slab = alloc.grow(slab, slab.capacity + 1)
            # Retire (LRU-evictable): later cycles' allocations force
            # eviction once the arena fills.
            alloc.release(slab, evictable=True)
            plan = alloc.to_memory_plan()
            plan.validate()
            report = check_slab_plan(plan, page_bytes=config.page_bytes)
            assert report.ok, f"cycle {cycle}: {report.summary()}"
        assert metrics.value("kvcache.evictions") > 0  # churn actually evicted
        alloc.close()
        assert san.report().ok, san.report().describe()


class TestOverheadGuard:
    def test_disabled_sanitizer_overhead_under_10_percent(self):
        """Structural guard (same method as the tracer's): price the
        disabled-mode per-op cost — one ``enabled`` check at each probe
        site plus a worst-case full ``probe()``/``locked()`` call — and
        compare against a measured small-model run."""
        g = small_net()
        session = Session(g)
        feeds = feed(g)
        session.run(feeds)  # warm-up
        repeats = 10
        start = time.perf_counter()
        for _ in range(repeats):
            session.run(feeds)
        run_ms = (time.perf_counter() - start) * 1000.0 / repeats

        san = Sanitizer(enabled=False)
        lock = threading.Lock()
        obj = object()
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            san.probe(obj, "f", "w")
            san.locked(lock, "n")
            san.hb_send("k")
        per_site_ms = (time.perf_counter() - start) * 1000.0 / calls

        # Worst case: every op pays three full disabled entry points
        # (reality is cheaper — hot loops guard on `.enabled` and skip
        # the calls entirely).
        n_ops = len(session._order)
        overhead_ms = per_site_ms * n_ops * 3
        assert overhead_ms < 0.10 * run_ms, (
            f"disabled sanitizer would add {overhead_ms:.4f} ms to a "
            f"{run_ms:.3f} ms run ({overhead_ms / run_ms * 100:.1f}%)"
        )


@pytest.mark.chaos
class TestSanitizedStorm:
    def test_200_fault_storm_reports_zero_findings(self):
        """The tentpole acceptance run: a full 200-fault chaos storm with
        the sanitizer live must stay OK *and* report zero races, zero
        lock cycles and zero lifecycle findings."""
        from repro.faults.chaos import run_chaos_storm

        report = run_chaos_storm(seed=0, target_faults=200, sanitize=True)
        assert report.sanitized
        assert report.races == 0, report.describe()
        assert report.lock_cycles == 0, report.describe()
        assert report.leaks == 0, report.describe()
        assert report.ok, report.describe()
        assert "sanitize" in report.describe()
