"""Tests for repro.ir.tensor: dtypes, layouts, descriptors."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ir import DataType, Layout, TensorDesc, buffer_nbytes, element_count
from repro.ir.tensor import SIMD_WIDTH


class TestDataType:
    def test_numpy_round_trip(self):
        for dt in DataType:
            assert DataType.from_numpy(dt.np_dtype) is dt

    def test_itemsize(self):
        assert DataType.FLOAT32.itemsize == 4
        assert DataType.FLOAT16.itemsize == 2
        assert DataType.INT8.itemsize == 1
        assert DataType.INT32.itemsize == 4

    def test_from_numpy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unsupported"):
            DataType.from_numpy(np.dtype("complex64"))


class TestTensorDesc:
    def test_basic_properties(self):
        d = TensorDesc("x", (1, 3, 224, 224))
        assert d.rank == 4
        assert d.size == 1 * 3 * 224 * 224
        assert d.nbytes == d.size * 4
        assert d.dtype is DataType.FLOAT32
        assert d.layout is Layout.NCHW

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            TensorDesc("x", (1, -3, 4, 4))

    def test_nc4hw4_physical_shape_pads_channels(self):
        d = TensorDesc("x", (1, 3, 8, 8), layout=Layout.NC4HW4)
        assert d.physical_shape() == (1, 1, 8, 8, 4)
        d = TensorDesc("x", (2, 9, 5, 5), layout=Layout.NC4HW4)
        assert d.physical_shape() == (2, 3, 5, 5, 4)

    def test_nc4hw4_exact_multiple(self):
        d = TensorDesc("x", (1, 8, 4, 4), layout=Layout.NC4HW4)
        assert d.physical_shape() == (1, 2, 4, 4, 4)
        assert d.nbytes == 8 * 4 * 4 * 4  # no padding waste

    def test_nc4hw4_requires_rank4(self):
        d = TensorDesc("x", (3, 8), layout=Layout.NC4HW4)
        with pytest.raises(ValueError, match="rank-4"):
            d.physical_shape()

    def test_with_layout_and_name(self):
        d = TensorDesc("x", (1, 4, 2, 2))
        assert d.with_layout(Layout.NC4HW4).layout is Layout.NC4HW4
        assert d.with_name("y").name == "y"
        # original unchanged (frozen dataclass)
        assert d.name == "x" and d.layout is Layout.NCHW

    def test_shape_coerced_to_int_tuple(self):
        d = TensorDesc("x", [np.int64(2), np.int64(3)])
        assert d.shape == (2, 3)
        assert all(isinstance(v, int) for v in d.shape)


class TestBufferSizes:
    def test_element_count_empty_is_one(self):
        assert element_count(()) == 1

    @given(st.lists(st.integers(min_value=0, max_value=16), min_size=1, max_size=5))
    def test_element_count_matches_numpy(self, dims):
        assert element_count(dims) == int(np.prod(dims, dtype=np.int64))

    @given(
        st.integers(1, 4), st.integers(1, 33), st.integers(1, 16), st.integers(1, 16)
    )
    def test_nc4hw4_nbytes_at_least_nchw(self, n, c, h, w):
        shape = (n, c, h, w)
        plain = buffer_nbytes(shape, DataType.FLOAT32)
        packed = buffer_nbytes(shape, DataType.FLOAT32, Layout.NC4HW4)
        assert packed >= plain
        # padding never exceeds 3 extra channel planes
        assert packed <= plain + (SIMD_WIDTH - 1) * n * h * w * 4

    def test_nc4hw4_nbytes_rejects_bad_rank(self):
        with pytest.raises(ValueError, match="rank-4"):
            buffer_nbytes((3, 3), DataType.FLOAT32, Layout.NC4HW4)
