"""Request timelines, SLO histograms, Prometheus export, and the
disabled-tracker overhead guard (see repro.obs.requests / repro.obs.prom)."""

import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import parse_prometheus, prom_name, to_prometheus
from repro.obs.requests import (
    RequestTracker,
    get_request_tracker,
    resolve_request_tracker,
    set_request_tracker,
)
from repro.obs.resources import ResourceSampler
from repro.obs.tracer import Tracer


class TestRequestTimeline:
    def test_slo_milestones(self):
        reg = MetricsRegistry()
        tracker = RequestTracker(metrics=reg)
        tl = tracker.start(tracker.next_id(), "generate", prompt_tokens=4)
        tl.admitted(batch=2)
        for _ in range(5):
            tl.token()
        tl.finish("length")

        hists = reg.snapshot()["histograms"]
        assert hists["slo.queue_wait_ms"]["count"] == 1
        assert hists["slo.ttft_ms"]["count"] == 1
        assert hists["slo.tpot_ms"]["count"] == 4  # 5 tokens -> 4 gaps
        assert hists["slo.tokens_per_sec"]["count"] == 1
        assert hists["slo.e2e_ms"]["count"] == 1
        assert reg.value("slo.requests") == 1
        # TTFT includes queue wait; e2e includes everything.
        assert tl.ttft_ms >= tl.queue_wait_ms
        assert tl.e2e_ms >= tl.ttft_ms
        assert tl.tokens == 5

    def test_readmission_does_not_reset_queue_wait(self):
        tracker = RequestTracker(metrics=MetricsRegistry())
        tl = tracker.start("r0")
        tl.admitted()
        first_wait = tl.queue_wait_ms
        time.sleep(0.002)
        tl.admitted()  # preempted sequence rejoining
        assert tl.queue_wait_ms == first_wait
        names = [e.name for e in tl.events]
        assert names.count("admitted") == 1
        assert names.count("readmitted") == 1

    def test_finish_is_idempotent_and_counts_failures(self):
        reg = MetricsRegistry()
        tracker = RequestTracker(metrics=reg)
        tl = tracker.start("r0")
        tl.finish("error")
        tl.finish("ok")  # second finish ignored
        assert tl.finish_reason == "error"
        assert reg.value("slo.failures") == 1
        assert reg.snapshot()["histograms"]["slo.e2e_ms"]["count"] == 1
        ok = tracker.start("r1")
        ok.finish("stop")
        assert reg.value("slo.failures") == 1  # stop/length/ok are not failures

    def test_live_table_retires_on_finish(self):
        tracker = RequestTracker(metrics=MetricsRegistry())
        a = tracker.start("a")
        tracker.start("b")
        assert tracker.live() == ["a", "b"]
        a.finish()
        assert tracker.live() == ["b"]
        assert tracker.get("a") is None

    def test_next_id_is_deterministic(self):
        tracker = RequestTracker(metrics=MetricsRegistry())
        assert [tracker.next_id() for _ in range(3)] == ["req-0", "req-1", "req-2"]

    def test_deterministic_serialization_drops_wall_clock(self):
        tracker = RequestTracker(metrics=MetricsRegistry())
        tl = tracker.start("r0")
        tl.event("probe", count=3, rate=1.5, site="kv")
        det = tl.to_dict(deterministic=True)
        assert "queue_wait_ms" not in det and "ttft_ms" not in det
        probe = [e for e in det["events"] if e["name"] == "probe"][0]
        assert "t_ms" not in probe
        assert probe["args"] == {"count": 3, "site": "kv"}  # float dropped
        full = tl.to_dict()
        probe_full = [e for e in full["events"] if e["name"] == "probe"][0]
        assert probe_full["args"]["rate"] == 1.5 and "t_ms" in probe_full

    def test_event_cap_bounds_timeline_memory(self):
        tracker = RequestTracker(metrics=MetricsRegistry(), max_events=4)
        tl = tracker.start("r0")
        for i in range(20):
            tl.event("tick", i=i)
        assert len(tl.events) == 4


class TestTrackerToggle:
    def test_disabled_tracker_returns_shared_null_timeline(self):
        disabled = RequestTracker(enabled=False, metrics=MetricsRegistry())
        a = disabled.start("a")
        b = disabled.start("b")
        assert a is b  # one shared no-op object, no per-request allocation
        a.admitted()
        a.token()
        a.finish("error")
        assert disabled.metrics.snapshot()["histograms"] == {}
        assert disabled.dump("trigger") is None

    def test_process_default_is_disabled_and_swappable(self):
        assert not get_request_tracker().enabled
        mine = RequestTracker(metrics=MetricsRegistry())
        prev = set_request_tracker(mine)
        try:
            assert get_request_tracker() is mine
        finally:
            set_request_tracker(prev)

    def test_resolve_spec_forms(self):
        reg = MetricsRegistry()
        mine = RequestTracker(metrics=reg)
        assert resolve_request_tracker(mine, None) is mine
        fresh = resolve_request_tracker(True, reg)
        assert fresh.enabled and fresh.metrics is reg
        assert resolve_request_tracker(None, reg) is get_request_tracker()
        assert resolve_request_tracker(False, reg) is get_request_tracker()

    def test_disabled_tracker_overhead_under_5_percent(self):
        """The per-request cost of disabled request tracking must stay
        under 5% of a small-model run loop.

        Structural pricing (like the disabled-tracer guard, which flakes
        less than A/B wall-clock on shared hosts): a disabled tracker
        costs one ``enabled`` check plus the no-op timeline's method
        calls per request; we price the full per-request call pattern
        directly and compare against the measured run time.
        """
        from repro.core import Session
        from repro.ir import GraphBuilder

        b = GraphBuilder("tiny", seed=0)
        x = b.input("data", (1, 3, 16, 16))
        x = b.conv(x, oc=8, kernel=3, activation="relu")
        x = b.conv(x, oc=8, kernel=1)
        x = b.fc(b.global_avg_pool(x), units=4)
        b.output(b.softmax(x))
        session = Session(b.finish())
        feeds = {"data": np.zeros((1, 3, 16, 16), np.float32)}
        session.run(feeds)  # warm-up
        repeats = 10
        start = time.perf_counter()
        for _ in range(repeats):
            session.run(feeds)
        run_ms = (time.perf_counter() - start) * 1000.0 / repeats

        tracker = RequestTracker(enabled=False)
        assert not tracker.enabled
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            # The engine's whole per-request pattern when tracking is off.
            if tracker.enabled:
                tl = tracker.start(tracker.next_id(), "infer")
            else:
                tl = None
            if tl is not None:
                tl.admitted()
                tl.finish("ok")
        per_request_ms = (time.perf_counter() - start) * 1000.0 / calls

        assert per_request_ms < 0.05 * run_ms, (
            f"disabled request tracking would add {per_request_ms:.5f} ms to "
            f"a {run_ms:.3f} ms request ({per_request_ms / run_ms * 100:.2f}%)"
        )


class TestResourceSampler:
    def test_sample_fans_out_to_gauges_history_and_counter_events(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        sampler = ResourceSampler(
            sources={"res.demo.util": lambda: 0.25},
            tracer=tracer,
            metrics=reg,
        )
        sampler.sample()
        sampler.sample({"res.demo.extra": 2.0})
        assert reg.gauge("res.demo.util").value == 0.25
        assert reg.gauge("res.demo.extra").value == 2.0
        series = sampler.series()
        assert series["res.demo.util"] == [0.25, 0.25]
        assert series["res.demo.extra"] == [2.0]
        counter_spans = [s for s in tracer.spans if s.counter]
        assert len(counter_spans) == 3
        assert all(s.args["value"] in (0.25, 2.0) for s in counter_spans)

    def test_raising_source_is_skipped(self):
        def boom():
            raise RuntimeError("closed")

        sampler = ResourceSampler(
            sources={"bad": boom, "good": lambda: 1.0},
            tracer=Tracer(enabled=False),
            metrics=MetricsRegistry(),
        )
        values = sampler.sample()
        assert values == {"good": 1.0}

    def test_history_is_bounded(self):
        sampler = ResourceSampler(
            sources={"v": lambda: 1.0},
            tracer=Tracer(enabled=False),
            metrics=MetricsRegistry(),
            max_samples=8,
        )
        for _ in range(32):
            sampler.sample()
        assert len(sampler.series()["v"]) == 8

    def test_counter_events_export_as_chrome_counter_tracks(self):
        from repro.obs.export import chrome_trace_events

        tracer = Tracer()
        tracer.counter("res.kv.page_utilization", 0.5)
        events = chrome_trace_events(tracer)
        counters = [e for e in events if e.get("ph") == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "res.kv.page_utilization"
        assert counters[0]["args"]["value"] == 0.5


class TestPrometheus:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("slo.requests").inc(3)
        reg.gauge("res.kv.page_utilization").set(0.75)
        h = reg.histogram("slo.ttft_ms")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        return reg

    def test_prom_name_sanitizes(self):
        assert prom_name("slo.ttft_ms") == "repro_slo_ttft_ms"
        assert prom_name("res.kv-free pages") == "repro_res_kv_free_pages"

    def test_export_round_trips_through_the_validating_parser(self):
        text = to_prometheus(self._populated())
        families = parse_prometheus(text)
        assert families["repro_slo_requests_total"]["type"] == "counter"
        assert families["repro_res_kv_page_utilization"]["type"] == "gauge"
        ttft = families["repro_slo_ttft_ms"]
        assert ttft["type"] == "summary"
        plain = {n: v for n, labels, v in ttft["samples"] if not labels}
        quantiles = {
            labels["quantile"]: v
            for n, labels, v in ttft["samples"] if "quantile" in labels
        }
        assert plain["repro_slo_ttft_ms_count"] == 4.0
        assert plain["repro_slo_ttft_ms_sum"] == 16.0
        assert set(quantiles) == {"0.5", "0.9", "0.99"}

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE repro_x made_up_type\nrepro_x 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("repro_untyped_sample 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE repro_x counter\nrepro_x notanumber\n")

    def test_engine_slo_metrics_export(self):
        """End to end: a tracked generation run exports SLO families."""
        from repro.genai import GenerationConfig, GenerationEngine, SamplingParams

        reg = MetricsRegistry()
        engine = GenerationEngine(GenerationConfig(
            vocab=32, max_seq=16, d_model=16, heads=2, layers=1,
            max_batch=2, page_tokens=4, metrics=reg, requests=True,
        ))
        try:
            engine.generate([[1, 2, 3], [4, 5]], SamplingParams(max_tokens=4))
        finally:
            engine.close()
        families = parse_prometheus(to_prometheus(reg))
        for family in (
            "repro_slo_requests_total",
            "repro_slo_queue_wait_ms",
            "repro_slo_ttft_ms",
            "repro_slo_tpot_ms",
            "repro_slo_tokens_per_sec",
            "repro_res_kv_page_utilization",
        ):
            assert family in families, f"missing {family}"
        assert engine.requests.live() == []  # every timeline retired
