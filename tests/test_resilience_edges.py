"""Concurrency edges of the resilience primitives.

The sequential contracts (open-after-threshold, typed pool timeout) live
in ``test_faults_resilience``; these tests drive the same primitives from
many threads at once, because the bugs they guard against — two HALF_OPEN
probes racing through one cool-down expiry, a checkout storm starving a
bounded pool — only exist under contention.
"""

import threading

import pytest

from repro.core import Session
from repro.faults import PoolTimeout
from repro.faults.resilience import CircuitBreaker
from repro.ir import GraphBuilder
from repro.serving.pool import SessionPool


def tiny_net(hw=8):
    b = GraphBuilder("tiny", seed=2)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=4, kernel=3, activation="relu", name="conv1")
    x = b.fc(b.global_avg_pool(x), units=4)
    b.output(b.softmax(x))
    return b.finish()


class FakeClock:
    """A manually-advanced monotonic clock for deterministic breakers."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _race(n_threads, fn):
    """Run ``fn(i)`` from n threads released simultaneously; return results."""
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads

    def run(i):
        barrier.wait()
        results[i] = fn(i)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


class TestHalfOpenRace:
    def _opened_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(10.0)  # cool-down expires -> HALF_OPEN
        assert breaker.state == CircuitBreaker.HALF_OPEN
        return breaker, clock

    def test_concurrent_allow_admits_exactly_one_probe(self):
        # The race: many callers observe HALF_OPEN at the same expiry.
        # Exactly one may probe the primary; everyone else must keep
        # short-circuiting, or a still-down backend gets a thundering
        # herd the breaker existed to prevent.
        breaker, _ = self._opened_breaker()
        admitted = _race(16, lambda i: breaker.allow())
        assert admitted.count(True) == 1
        # The admitted probe re-armed OPEN: no more probes this window.
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow() is False

    def test_failed_probe_reopens_for_a_full_cooldown(self):
        breaker, clock = self._opened_breaker()
        assert breaker.allow() is True  # the probe
        clock.advance(6.0)  # probe takes a while to fail...
        breaker.record_failure()
        # ...and the cool-down restarts from the *failure*, not the
        # original open: 6s later is not probe time yet.
        clock.advance(6.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow() is False
        clock.advance(4.0)  # full 10s since the failed probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow() is True

    def test_successful_probe_closes_for_all_racers(self):
        breaker, _ = self._opened_breaker()
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert all(_race(8, lambda i: breaker.allow()))


class TestCheckoutStorm:
    @pytest.fixture(scope="class")
    def pool(self):
        net = tiny_net()
        return SessionPool(lambda: Session(net), size=2)

    def test_storm_gets_typed_timeouts_not_hangs(self, pool):
        # 12 threads storm a 2-session pool while both sessions are
        # pinned: every checkout must resolve to a typed PoolTimeout —
        # bounded backpressure — never a hang or a raw queue.Empty.
        hold = threading.Event()
        pinned = threading.Barrier(3)

        def pin():
            with pool.acquire():
                pinned.wait()
                hold.wait()

        holders = [threading.Thread(target=pin) for _ in range(2)]
        for t in holders:
            t.start()
        pinned.wait()  # both sessions checked out

        def attempt(i):
            try:
                with pool.acquire(timeout=0.05):
                    return "acquired"
            except PoolTimeout as exc:
                assert exc is not None
                return "timeout"

        try:
            outcomes = _race(12, attempt)
        finally:
            hold.set()
            for t in holders:
                t.join()
        assert outcomes.count("timeout") == 12

    def test_storm_with_churn_makes_progress(self, pool):
        # Same storm, but holders release: checkouts must drain with a
        # mix of successes and typed timeouts, and the pool must end
        # fully idle (no leaked checkouts under contention).
        def attempt(i):
            try:
                with pool.acquire(timeout=2.0):
                    return "acquired"
            except PoolTimeout:
                return "timeout"

        outcomes = _race(12, attempt)
        assert outcomes.count("acquired") == 12
        assert pool.idle() == 2

    def test_timeout_carries_pool_shape(self, pool):
        hold = threading.Event()
        pinned = threading.Barrier(3)

        def pin():
            with pool.acquire():
                pinned.wait()
                hold.wait()

        holders = [threading.Thread(target=pin) for _ in range(2)]
        for t in holders:
            t.start()
        pinned.wait()
        try:
            with pytest.raises(PoolTimeout) as exc:
                with pool.acquire(timeout=0.01):
                    pass
        finally:
            hold.set()
            for t in holders:
                t.join()
        assert exc.value.size == 2
        assert exc.value.idle == 0
        assert exc.value.wait_s >= 0.0
