"""Tests for the serving layer: cache, pool, batching, engine, CLI."""

import json
import threading

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.ir import GraphBuilder, save_model
from repro.kernels.winograd import (
    clear_transform_cache,
    transform_cache_entries,
)
from repro.serving import (
    CACHE_ENV_VAR,
    Engine,
    EngineConfig,
    MicroBatcher,
    PreInferenceArtifacts,
    PreInferenceCache,
    SessionPool,
    default_cache_dir,
)
from repro.tools.cli import main

RNG = np.random.default_rng(11)


def serving_net(hw=32):
    """Small conv net with a 3x3 conv (so Winograd artifacts exist) that
    resizes cleanly to any spatial/batch size (GAP before the fc)."""
    b = GraphBuilder("servenet", seed=3)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=16, kernel=3, pad_mode="same", activation="relu")
    x = b.conv(x, oc=16, kernel=3, pad_mode="same", activation="relu")
    x = b.max_pool(x, 2)
    x = b.conv(x, oc=32, kernel=1)
    x = b.fc(b.global_avg_pool(x), units=10)
    b.output(b.softmax(x))
    return b.finish()


def feed(hw=32, batch=1, seed=0):
    rng = np.random.default_rng(seed)
    return {"data": rng.standard_normal((batch, 3, hw, hw)).astype(np.float32)}


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestPreInferenceCache:
    def test_artifacts_roundtrip_through_json(self):
        session = Session(serving_net())
        artifacts = PreInferenceArtifacts.from_session(session)
        assert artifacts.schemes  # the 3x3 convs got scheme decisions
        wire = json.loads(json.dumps(artifacts.to_json()))
        restored = PreInferenceArtifacts.from_json(wire)
        warm = Session(serving_net(), artifacts=restored.apply())
        x = feed()
        np.testing.assert_array_equal(
            list(warm.run(x).values())[0], list(session.run(x).values())[0]
        )

    def test_key_sensitive_to_graph_and_config(self):
        cache = PreInferenceCache("/nonexistent")
        g = serving_net()
        base = cache.key(g, SessionConfig())
        assert base == cache.key(serving_net(), SessionConfig())  # deterministic
        assert base != cache.key(serving_net(16), SessionConfig())
        assert base != cache.key(g, SessionConfig(threads=8))
        assert base != cache.key(g, SessionConfig(use_strassen=False))
        assert base != cache.key(g, SessionConfig(), {"data": (4, 3, 32, 32)})

    def test_store_load_roundtrip(self, cache_dir):
        cache = PreInferenceCache(cache_dir)
        session = Session(serving_net())
        key = cache.key(session.graph, SessionConfig())
        assert cache.load(key) is None
        cache.store(key, PreInferenceArtifacts.from_session(session))
        assert cache.entries() == [key]
        loaded = cache.load(key)
        assert loaded is not None
        assert set(loaded.schemes) == set(session.schemes or {})

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        cache = PreInferenceCache(cache_dir)
        key = cache.key(serving_net(), SessionConfig())
        cache.root.mkdir(parents=True)
        cache.path(key).write_text("{not json", encoding="utf-8")
        assert cache.load(key) is None
        # the engine shrugs it off too: miss, recompute, overwrite
        engine = Engine(serving_net(), EngineConfig(
            pool_size=1, cache_dir=cache_dir))
        assert engine.stats.cache_misses == 1
        assert cache.load(key) is not None

    def test_version_mismatch_is_a_miss(self, cache_dir):
        cache = PreInferenceCache(cache_dir)
        session = Session(serving_net())
        key = cache.key(session.graph, SessionConfig())
        cache.store(key, PreInferenceArtifacts.from_session(session))
        data = json.loads(cache.path(key).read_text())
        data["version"] = 999
        cache.path(key).write_text(json.dumps(data))
        assert cache.load(key) is None

    def test_env_var_sets_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        assert PreInferenceCache().root == tmp_path / "envcache"

    def test_stale_artifacts_fall_back_to_recompute(self, cache_dir):
        """Artifacts for the wrong graph under the right key: the session
        must detect the mismatch and silently recompute, not crash."""
        cache = PreInferenceCache(cache_dir)
        other = Session(serving_net(16))  # different shapes => alien plan
        g = serving_net(32)
        key = cache.key(g, SessionConfig())
        cache.store(key, PreInferenceArtifacts.from_session(other))
        engine = Engine(g, EngineConfig(pool_size=1, cache_dir=cache_dir))
        assert engine.stats.cache_hits == 1  # it *was* applied...
        out = engine.infer(feed())  # ...but inference is still correct
        gold = list(Session(serving_net(32)).run(feed()).values())[0]
        np.testing.assert_array_equal(list(out.values())[0], gold)


class TestEngineWarmup:
    def test_cold_then_warm_process(self, cache_dir):
        g = serving_net()
        cold = Engine(g, EngineConfig(pool_size=2, cache_dir=cache_dir))
        # first worker cold, second already warm from the fresh entry
        assert cold.stats.cache_misses == 1
        assert cold.stats.cache_hits == 1

        # simulate a new process: blow away the in-memory transform cache
        clear_transform_cache()
        warm = Engine(g, EngineConfig(pool_size=2, cache_dir=cache_dir))
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hits == 2
        assert transform_cache_entries()  # preloaded from disk
        x = feed()
        np.testing.assert_array_equal(
            list(warm.infer(x).values())[0], list(cold.infer(x).values())[0]
        )

    def test_warm_prepare_is_faster(self, cache_dir):
        g = serving_net(64)
        clear_transform_cache()  # make the cold engine genuinely cold
        cold = Engine(g, EngineConfig(pool_size=1, cache_dir=cache_dir))
        clear_transform_cache()
        warm = Engine(g, EngineConfig(pool_size=1, cache_dir=cache_dir))
        assert warm.stats.warm_prepare_ms[0] < cold.stats.cold_prepare_ms[0]

    def test_cache_disabled(self, cache_dir):
        engine = Engine(serving_net(), EngineConfig(
            pool_size=2, use_cache=False, cache_dir=cache_dir))
        assert engine.cache is None and engine.cache_key is None
        # uncached prepares all count as cold
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 2
        assert list(engine.infer(feed()).values())[0].shape == (1, 10)


class TestSessionPool:
    def test_checkout_and_return(self, cache_dir):
        pool = SessionPool(lambda: Session(serving_net()), size=2)
        assert pool.size == 2 and pool.idle() == 2
        with pool.acquire() as s:
            assert isinstance(s, Session)
            assert pool.idle() == 1
        assert pool.idle() == 2

    def test_acquire_timeout_backpressure(self):
        from repro.faults import PoolTimeout, ResilienceError

        pool = SessionPool(lambda: Session(serving_net(16)), size=1)
        with pool.acquire():
            with pytest.raises(PoolTimeout) as exc_info:
                with pool.acquire(timeout=0.05):
                    pass
        err = exc_info.value
        assert isinstance(err, ResilienceError)
        assert err.wait_s >= 0.05
        assert err.size == 1
        assert err.idle == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="pool size"):
            SessionPool(lambda: Session(serving_net(16)), size=0)


class TestConcurrentStress:
    def test_pooled_engine_bit_identical_to_serial(self, cache_dir):
        """ISSUE acceptance: N threads hammering one pooled engine must
        produce results bit-identical to a serial session."""
        g = serving_net()
        requests = [feed(seed=i) for i in range(24)]
        serial = Session(g)
        gold = [list(serial.run(x).values())[0] for x in requests]

        engine = Engine(g, EngineConfig(pool_size=3, cache_dir=cache_dir))
        results = engine.infer_many(requests, clients=6)
        assert engine.stats.requests == len(requests)
        for got, want in zip(results, gold):
            np.testing.assert_array_equal(list(got.values())[0], want)

    def test_raw_threads_against_engine(self, cache_dir):
        g = serving_net()
        x = feed(seed=42)
        gold = list(Session(g).run(x).values())[0]
        engine = Engine(g, EngineConfig(pool_size=2, cache_dir=cache_dir))
        outs = [None] * 8

        def client(i):
            outs[i] = list(engine.infer(x).values())[0]

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got in outs:
            np.testing.assert_array_equal(got, gold)


class TestMicroBatching:
    def test_coalesces_into_one_batch(self):
        g = serving_net()
        with MicroBatcher(lambda: Session(g), max_batch=4,
                          timeout_ms=200.0) as batcher:
            futures = [batcher.submit(feed(seed=i)) for i in range(4)]
            results = [f.result(timeout=30) for f in futures]
        assert batcher.stats.requests == 4
        assert batcher.stats.batches == 1  # all 4 fit before the deadline
        assert batcher.stats.batched_requests == 4
        assert batcher.stats.max_batch_seen == 4
        serial = Session(serving_net())
        for i, out in enumerate(results):
            got = list(out.values())[0]
            assert got.shape == (1, 10)
            want = list(serial.run(feed(seed=i)).values())[0]
            np.testing.assert_allclose(got, want, atol=1e-5)

    def test_mixed_shapes_bucket_separately(self):
        g = serving_net()
        with MicroBatcher(lambda: Session(g), max_batch=4,
                          timeout_ms=50.0) as batcher:
            small = [batcher.submit(feed(hw=32, seed=i)) for i in range(2)]
            large = [batcher.submit(feed(hw=48, seed=i)) for i in range(2)]
            outs = [f.result(timeout=30) for f in small + large]
        for out in outs:
            assert list(out.values())[0].shape == (1, 10)
        assert batcher.stats.requests == 4
        assert batcher.stats.batches >= 2  # shapes never share a batch

    def test_multi_sample_requests_and_split(self):
        g = serving_net()
        with MicroBatcher(lambda: Session(g), max_batch=8,
                          timeout_ms=100.0) as batcher:
            f2 = batcher.submit(feed(batch=2, seed=1))
            f3 = batcher.submit(feed(batch=3, seed=2))
            out2, out3 = f2.result(timeout=30), f3.result(timeout=30)
        assert list(out2.values())[0].shape == (2, 10)
        assert list(out3.values())[0].shape == (3, 10)

    def test_batch_failure_hits_only_that_batch(self):
        g = serving_net()
        with MicroBatcher(lambda: Session(g), max_batch=2,
                          timeout_ms=20.0) as batcher:
            from repro.ir import GraphError

            with pytest.raises(GraphError):
                batcher.infer({"data": np.zeros((1, 3, 32, 32), np.float64)})
            # the batcher survives: the next well-formed request succeeds
            out = batcher.infer(feed())
            assert list(out.values())[0].shape == (1, 10)

    def test_rejects_mismatched_leading_dims(self):
        from repro.ir import GraphError

        b = GraphBuilder("two_in", seed=0)
        x = b.input("a", (2, 4))
        y = b.input("b", (3, 4))
        b.output(b.fc(x, units=2), b.fc(y, units=2))
        g = b.finish()
        with MicroBatcher(lambda: Session(g), max_batch=2) as batcher:
            with pytest.raises(GraphError, match="leading batch dimension"):
                batcher.submit({
                    "a": np.zeros((2, 4), np.float32),
                    "b": np.zeros((3, 4), np.float32),
                })

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher(lambda: Session(serving_net(16)), max_batch=2)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(feed(hw=16))

    def test_engine_batched_matches_serial(self, cache_dir):
        g = serving_net()
        requests = [feed(seed=i) for i in range(12)]
        serial = Session(g)
        gold = [list(serial.run(x).values())[0] for x in requests]
        with Engine(g, EngineConfig(
            pool_size=1, cache_dir=cache_dir, batching=True,
            max_batch=4, batch_timeout_ms=20.0,
        )) as engine:
            results = engine.infer_many(requests, clients=6)
        stats = engine.batcher.stats
        assert stats.requests == 12
        assert stats.batches <= 12
        for got, want in zip(results, gold):
            np.testing.assert_allclose(
                list(got.values())[0], want, atol=1e-5)


class TestServingCli:
    @pytest.fixture()
    def model_path(self, tmp_path):
        path = str(tmp_path / "serve.rmnn")
        save_model(serving_net(), path)
        return path

    def test_warm_cold_then_hit(self, model_path, cache_dir, capsys):
        assert main(["warm", model_path, "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cold prepare" in out and "warm prepare" in out
        assert main(["warm", model_path, "--cache-dir", cache_dir]) == 0
        assert "already warm" in capsys.readouterr().out

    def test_serve_selftest(self, model_path, cache_dir, capsys):
        assert main([
            "serve", model_path, "--requests", "8", "--clients", "3",
            "--pool", "2", "--cache-dir", cache_dir, "--selftest",
        ]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "req/s" in out

    def test_serve_selftest_batched(self, model_path, cache_dir, capsys):
        assert main([
            "serve", model_path, "--requests", "8", "--clients", "4",
            "--batch", "4", "--cache-dir", cache_dir, "--selftest",
        ]) == 0
        out = capsys.readouterr().out
        assert "allclose (batched)" in out

    def test_serve_honors_env_cache_dir(self, model_path, tmp_path,
                                        monkeypatch, capsys):
        cache = tmp_path / "envcache"
        monkeypatch.setenv(CACHE_ENV_VAR, str(cache))
        assert main(["warm", model_path]) == 0
        capsys.readouterr()
        assert cache.is_dir() and list(cache.glob("*.json"))
