"""Tests for sliding-window conv, 1x1 GEMM conv, depthwise and dispatch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    GemmStats,
    conv2d,
    conv2d_1x1,
    conv2d_im2col,
    depthwise_conv2d,
    im2col,
)

from .gold import conv2d_naive, depthwise_conv2d_naive

RNG = np.random.default_rng(11)


class TestIm2col:
    def test_window_contents(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = im2col(x, (2, 2), (1, 1), (0, 0, 0, 0))
        assert cols.shape == (1, 3, 3, 1, 2, 2)
        np.testing.assert_array_equal(cols[0, 0, 0, 0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(cols[0, 2, 2, 0], [[10, 11], [14, 15]])

    def test_stride_and_pad(self):
        x = np.ones((1, 2, 5, 5), np.float32)
        cols = im2col(x, (3, 3), (2, 2), (1, 1, 1, 1))
        assert cols.shape == (1, 3, 3, 2, 3, 3)

    def test_dilation(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5)
        cols = im2col(x, (2, 2), (1, 1), (0, 0, 0, 0), (2, 2))
        # dilated window picks elements 2 apart
        np.testing.assert_array_equal(cols[0, 0, 0, 0], [[0, 2], [10, 12]])


class TestConvIm2col:
    @pytest.mark.parametrize(
        "kernel,stride,pads,dilation,groups",
        [
            ((3, 3), (1, 1), (1, 1, 1, 1), (1, 1), 1),
            ((3, 3), (2, 2), (1, 1, 1, 1), (1, 1), 1),
            ((1, 7), (1, 1), (0, 0, 3, 3), (1, 1), 1),   # Inception 1x7
            ((7, 1), (1, 1), (3, 3, 0, 0), (1, 1), 1),   # Inception 7x1
            ((3, 3), (1, 1), (2, 2, 2, 2), (2, 2), 1),   # dilated
            ((3, 3), (1, 1), (1, 1, 1, 1), (1, 1), 2),   # grouped
            ((5, 5), (3, 3), (2, 2, 2, 2), (1, 1), 1),
        ],
    )
    def test_matches_naive(self, kernel, stride, pads, dilation, groups):
        ic, oc = 4, 6
        x = RNG.standard_normal((2, ic, 14, 14)).astype(np.float32)
        w = RNG.standard_normal((oc, ic // groups, *kernel)).astype(np.float32)
        b = RNG.standard_normal(oc).astype(np.float32)
        got = conv2d_im2col(x, w, b, stride, pads, dilation, groups)
        want = conv2d_naive(x, w, b, stride, pads, dilation, groups)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_group_mismatch_raises(self):
        x = RNG.standard_normal((1, 5, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((4, 2, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="groups"):
            conv2d_im2col(x, w, groups=2)

    @given(
        k=st.integers(1, 5),
        s=st.integers(1, 3),
        p=st.integers(0, 2),
        hw=st.integers(6, 18),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive(self, k, s, p, hw):
        x = RNG.standard_normal((1, 3, hw, hw)).astype(np.float32)
        w = RNG.standard_normal((4, 3, k, k)).astype(np.float32)
        pads = (p, p, p, p)
        if hw + 2 * p < k:
            return
        got = conv2d_im2col(x, w, stride=(s, s), pads=pads)
        want = conv2d_naive(x, w, stride=(s, s), pads=pads)
        np.testing.assert_allclose(got, want, atol=1e-4)


class TestConv1x1:
    def test_matches_naive(self):
        x = RNG.standard_normal((2, 8, 10, 10)).astype(np.float32)
        w = RNG.standard_normal((16, 8, 1, 1)).astype(np.float32)
        b = RNG.standard_normal(16).astype(np.float32)
        got = conv2d_1x1(x, w, b)
        want = conv2d_naive(x, w, b)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_strided_1x1(self):
        x = RNG.standard_normal((1, 4, 9, 9)).astype(np.float32)
        w = RNG.standard_normal((8, 4, 1, 1)).astype(np.float32)
        got = conv2d_1x1(x, w, stride=(2, 2))
        want = conv2d_naive(x, w, stride=(2, 2))
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_rejects_non_1x1(self):
        x = RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((8, 4, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="1x1"):
            conv2d_1x1(x, w)

    def test_large_1x1_routes_through_strassen(self):
        x = RNG.standard_normal((1, 512, 24, 24)).astype(np.float32)
        w = RNG.standard_normal((512, 512, 1, 1)).astype(np.float32)
        stats = GemmStats()
        conv2d_1x1(x, w, use_strassen=True, stats=stats)
        assert stats.max_depth >= 1  # Strassen actually recursed
        direct = 576 * 512 * 512
        assert stats.mul_elements < direct


class TestDepthwise:
    @pytest.mark.parametrize(
        "stride,pads,dilation",
        [((1, 1), (1, 1, 1, 1), (1, 1)), ((2, 2), (1, 1, 1, 1), (1, 1)),
         ((1, 1), (2, 2, 2, 2), (2, 2))],
    )
    def test_matches_naive(self, stride, pads, dilation):
        c = 6
        x = RNG.standard_normal((2, c, 12, 12)).astype(np.float32)
        w = RNG.standard_normal((c, 1, 3, 3)).astype(np.float32)
        b = RNG.standard_normal(c).astype(np.float32)
        got = depthwise_conv2d(x, w, b, stride, pads, dilation)
        want = depthwise_conv2d_naive(x, w, b, stride, pads, dilation)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_channel_mismatch(self):
        x = RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((5, 1, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="channels"):
            depthwise_conv2d(x, w)


class TestDispatch:
    def test_all_schemes_agree(self):
        x = RNG.standard_normal((1, 8, 16, 16)).astype(np.float32)
        w = RNG.standard_normal((8, 8, 3, 3)).astype(np.float32)
        pads = (1, 1, 1, 1)
        sliding = conv2d(x, w, pads=pads, scheme="sliding")
        wino = conv2d(x, w, pads=pads, scheme="winograd", winograd_n=2)
        np.testing.assert_allclose(sliding, wino, atol=1e-3)

    def test_gemm1x1_scheme(self):
        x = RNG.standard_normal((1, 8, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((4, 8, 1, 1)).astype(np.float32)
        got = conv2d(x, w, scheme="gemm1x1")
        want = conv2d_naive(x, w)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_fused_activation(self):
        x = RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((4, 4, 3, 3)).astype(np.float32)
        y = conv2d(x, w, pads=(1, 1, 1, 1), scheme="sliding", activation="relu")
        assert (y >= 0).all()
        y6 = conv2d(x, w, pads=(1, 1, 1, 1), scheme="sliding", activation="relu6")
        assert (y6 <= 6).all() and (y6 >= 0).all()

    def test_unknown_scheme(self):
        x = RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((4, 4, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="scheme"):
            conv2d(x, w, scheme="magic")

    def test_winograd_rejects_groups(self):
        x = RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((4, 2, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="winograd"):
            conv2d(x, w, scheme="winograd", groups=2)
