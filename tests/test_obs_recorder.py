"""Flight recorder: ring bounds, postmortem payloads, deterministic
dumps, and the chaos-storm replay contract (same seed ⇒ byte-identical
artifacts; fault-free ⇒ zero dumps)."""

import hashlib
import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import POSTMORTEM_SCHEMA, FlightRecorder
from repro.obs.requests import RequestTracker


def _tracker(tmp_path, deterministic=True, capacity=256, max_requests=128):
    reg = MetricsRegistry()
    recorder = FlightRecorder(
        capacity=capacity, out_dir=str(tmp_path),
        deterministic=deterministic, metrics=reg, max_requests=max_requests,
    )
    return RequestTracker(metrics=reg, recorder=recorder), recorder, reg


class TestRing:
    def test_per_request_ring_keeps_last_n_events(self, tmp_path):
        tracker, recorder, _ = _tracker(tmp_path, capacity=4)
        tl = tracker.start("r0")
        for i in range(10):
            tl.event("tick", i=i)
        kept = recorder.events("r0")
        assert len(kept) == 4
        assert [e.args["i"] for e in kept] == [6, 7, 8, 9]

    def test_request_table_evicts_fifo(self, tmp_path):
        tracker, recorder, _ = _tracker(tmp_path, max_requests=2)
        for rid in ("a", "b", "c"):
            tracker.start(rid).event("tick")
        assert recorder.events("a") == []  # oldest ring evicted
        assert recorder.events("b") and recorder.events("c")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_payload_structure(self, tmp_path):
        tracker, recorder, reg = _tracker(tmp_path)
        reg.counter("faults.injected").inc(3)
        reg.counter("retry.attempts").inc(3)
        tl = tracker.start("r0", "infer")
        tl.event("deadline_exceeded", where="session.run")
        path = tracker.dump("DeadlineExceeded", "r0", detail="session.run")
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["schema"] == POSTMORTEM_SCHEMA
        assert payload["trigger"] == "DeadlineExceeded"
        assert payload["request"] == "r0"
        assert payload["live_requests"] == ["r0"]
        assert payload["detail"] == "session.run"
        assert payload["fault_state"] == {
            "faults.injected": 3, "retry.attempts": 3,
        }
        events = payload["timelines"]["r0"]
        assert [e["name"] for e in events] == ["enqueued", "deadline_exceeded"]
        assert reg.value("recorder.dumps") == 1

    def test_dump_filenames_are_deterministic_and_ordered(self, tmp_path):
        tracker, recorder, _ = _tracker(tmp_path)
        tracker.start("req-7").event("tick")
        p0 = tracker.dump("KVCacheOOM", "req-7")
        p1 = tracker.dump("sanitizer")
        assert os.path.basename(p0) == "postmortem-000-req-7-KVCacheOOM.json"
        assert os.path.basename(p1) == "postmortem-001-all-sanitizer.json"
        assert recorder.dumps == [p0, p1]

    def test_deterministic_dumps_are_byte_identical_across_runs(self, tmp_path):
        def run(out_dir):
            tracker, _, reg = _tracker(out_dir)
            reg.counter("faults.injected").inc()
            tl = tracker.start("r0", "generate", prompt_tokens=3)
            tl.admitted(batch=2)
            tl.token()
            tl.event("kv_eviction", evictions=1, at="grow")
            tl.finish("error")
            return tracker.dump("KVCacheOOM", "r0")

        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        pa, pb = run(a), run(b)
        ha = hashlib.sha256(open(pa, "rb").read()).hexdigest()
        hb = hashlib.sha256(open(pb, "rb").read()).hexdigest()
        assert ha == hb

    def test_non_deterministic_dump_keeps_wall_clock(self, tmp_path):
        tracker, _, _ = _tracker(tmp_path, deterministic=False)
        tl = tracker.start("r0")
        tl.event("tick", rate=1.5)
        path = tracker.dump("probe", "r0")
        payload = json.load(open(path, encoding="utf-8"))
        tick = payload["timelines"]["r0"][-1]
        assert "t_ms" in tick
        assert tick["args"]["rate"] == 1.5


@pytest.mark.chaos
class TestChaosFlightRecorder:
    def _digest_dir(self, d):
        out = {}
        for name in sorted(os.listdir(d)):
            with open(os.path.join(d, name), "rb") as fh:
                out[name] = hashlib.sha256(fh.read()).hexdigest()
        return out

    def test_same_seed_storms_dump_byte_identical_postmortems(self, tmp_path):
        from repro.faults.chaos import run_chaos_storm

        a, b = tmp_path / "a", tmp_path / "b"
        first = run_chaos_storm(seed=3, target_faults=30, postmortem_dir=str(a))
        second = run_chaos_storm(seed=3, target_faults=30, postmortem_dir=str(b))
        assert first.ok and second.ok
        assert first.dumps == second.dumps > 0
        assert first.deadline_trips == second.deadline_trips == 1
        da, db = self._digest_dir(a), self._digest_dir(b)
        assert list(da) == list(db)          # same artifact names, same order
        assert da == db                      # byte-identical content
        triggers = {name.rsplit("-", 1)[-1] for name in da}
        assert "DeadlineExceeded.json" in triggers

    def test_recorder_does_not_change_the_verdict(self, tmp_path):
        from repro.faults.chaos import run_chaos_storm

        bare = run_chaos_storm(seed=5, target_faults=30)
        recorded = run_chaos_storm(
            seed=5, target_faults=30, postmortem_dir=str(tmp_path)
        )
        assert bare.ok and recorded.ok
        assert bare.events == recorded.events
        assert bare.site_counts == recorded.site_counts
        assert bare.dumps == 0 and recorded.dumps > 0

    def test_fault_free_run_dumps_nothing(self, tmp_path):
        from repro.genai import GenerationConfig, GenerationEngine, SamplingParams
        from repro.obs.recorder import FlightRecorder
        from repro.obs.requests import RequestTracker

        reg = MetricsRegistry()
        tracker = RequestTracker(
            metrics=reg,
            recorder=FlightRecorder(
                out_dir=str(tmp_path), deterministic=True, metrics=reg
            ),
        )
        engine = GenerationEngine(GenerationConfig(
            vocab=32, max_seq=16, d_model=16, heads=2, layers=1,
            max_batch=2, page_tokens=4, metrics=reg, requests=tracker,
        ))
        try:
            results = engine.generate(
                [[1, 2, 3], [4, 5, 6]], SamplingParams(max_tokens=4)
            )
        finally:
            engine.close()
        assert all(r.finish_reason != "error" for r in results)
        assert os.listdir(tmp_path) == []
        assert tracker.recorder.dumps == []

    def test_cli_chaos_postmortem_dir(self, tmp_path, capsys):
        from repro.tools.cli import main

        rc = main([
            "chaos", "--seed", "1", "--faults", "30",
            "--postmortem-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "postmortems dumped" in out
        assert any(
            name.startswith("postmortem-") for name in os.listdir(tmp_path)
        )
