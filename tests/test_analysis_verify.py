"""Pass-verifier tests: every frontend's example graph must optimize clean
under ``verify=True``, and an injected bad pass must be caught and
attributed to itself (not to the pipeline as a whole).
"""

import numpy as np
import pytest

from repro.analysis import PassVerificationError, VerifyingPassManager, random_feeds
from repro.converter import convert_caffe_like, convert_onnx_like, convert_tflite_like
from repro.converter.optimizer.passes import (
    Pass,
    PassManager,
    PassResult,
    default_passes,
    optimize,
)
from repro.core.reference import execute_reference
from repro.ir import DataType, Op
from repro.models import build_model
from tests.test_converter import caffe_model, onnx_model
from tests.test_tflite_frontend import tflite_model


class EvilScale(Pass):
    """A plausible-looking pass that silently rescales the first weight."""

    name = "evil-scale"

    def __init__(self):
        self.done = False

    def run(self, graph):
        if self.done:
            return PassResult()
        for name, value in graph.constants.items():
            if value.ndim >= 2 and np.issubdtype(value.dtype, np.floating):
                graph.constants[name] = value * 3.0
                self.done = True
                return PassResult(changed=1)
        return PassResult()


class DanglingRewrite(Pass):
    """Deletes a node but forgets to rewire its consumers."""

    name = "dangling-rewrite"

    def run(self, graph):
        for node in graph.nodes:
            if node.op_type is Op.RELU:
                graph.nodes.remove(node)
                return PassResult(changed=1)
        return PassResult()


class TestVerifiedOptimizeOnFrontends:
    """Acceptance: verify=True passes on every frontend's example graph."""

    def converted(self, which):
        if which == "onnx":
            return convert_onnx_like(onnx_model())
        if which == "caffe":
            return convert_caffe_like(caffe_model())
        return convert_tflite_like(tflite_model())

    @pytest.mark.parametrize("which", ["onnx", "caffe", "tflite"])
    def test_frontend_graph_optimizes_under_verification(self, which):
        graph = self.converted(which)
        feeds = random_feeds(graph, seed=3)
        before = execute_reference(graph, feeds)
        optimize(graph, verify=True)
        after = execute_reference(graph, feeds)
        for name in graph.outputs:
            np.testing.assert_allclose(after[name], before[name], atol=5e-2)

    @pytest.mark.parametrize("name", ["mobilenet_v1", "squeezenet_v1.1"])
    def test_builtin_model_optimizes_under_verification(self, name):
        optimize(build_model(name, input_size=32, classes=7), verify=True)

    def test_verified_result_matches_unverified(self):
        plain = optimize(convert_onnx_like(onnx_model()))
        verified = optimize(convert_onnx_like(onnx_model()), verify=True)
        assert [n.op_type for n in plain.nodes] == [n.op_type for n in verified.nodes]


class TestBadPassAttribution:
    def test_numeric_corruption_is_caught_and_attributed(self):
        graph = convert_onnx_like(onnx_model())
        passes = list(default_passes()) + [EvilScale()]
        with pytest.raises(PassVerificationError) as exc_info:
            VerifyingPassManager(passes).run(graph)
        exc = exc_info.value
        assert exc.pass_name == "evil-scale"
        assert "diverged" in str(exc) or "delta" in str(exc)

    def test_structural_corruption_is_caught_and_attributed(self):
        graph = convert_onnx_like(onnx_model())
        with pytest.raises(PassVerificationError) as exc_info:
            VerifyingPassManager([DanglingRewrite()]).run(graph)
        exc = exc_info.value
        assert exc.pass_name == "dangling-rewrite"
        assert exc.diagnostics, "structural failure must carry diagnostics"

    def test_unverified_manager_misses_the_evil_pass(self):
        # Motivation check: without verification the corruption slips through.
        graph = convert_onnx_like(onnx_model())
        passes = list(default_passes()) + [EvilScale()]
        PassManager(passes).run(graph)  # no exception — that is the point

    def test_check_numerics_false_skips_the_spot_check(self):
        graph = convert_onnx_like(onnx_model())
        passes = list(default_passes()) + [EvilScale()]
        # Structure and shapes survive EvilScale, so this must not raise.
        VerifyingPassManager(passes, check_numerics=False).run(graph)

    def test_error_message_names_pass_and_round(self):
        graph = convert_onnx_like(onnx_model())
        with pytest.raises(PassVerificationError, match=r"pass 'evil-scale' \(round \d+\)"):
            VerifyingPassManager(list(default_passes()) + [EvilScale()]).run(graph)


class TestRandomFeeds:
    def test_feeds_match_descriptors(self):
        graph = build_model("tiny_transformer")
        feeds = random_feeds(graph)
        for name in graph.inputs:
            desc = graph.desc(name)
            assert feeds[name].shape == desc.shape
            assert feeds[name].dtype == desc.dtype.np_dtype

    def test_integer_inputs_stay_in_gather_range(self):
        graph = build_model("tiny_transformer")
        feeds = random_feeds(graph, seed=5)
        for name, arr in feeds.items():
            if np.issubdtype(arr.dtype, np.integer):
                assert arr.min() >= 0 and arr.max() <= 1

    def test_deterministic_per_seed(self):
        graph = build_model("lstm_classifier")
        a, b = random_feeds(graph, seed=9), random_feeds(graph, seed=9)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
