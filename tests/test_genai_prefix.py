"""KV prefix caching: the trie, COW sharing, and the bit-identity law.

The contract under test: turning the prefix cache on changes *which
memory* serves the shared rows, never the tokens.  Every property here
compares a prefix-enabled engine against a cold one (same config, same
seeds) and demands token-for-token equality — including when the COW
parent slab has been evicted out from under its children.
"""

import numpy as np
import pytest

from repro.genai import (
    GenerationConfig,
    GenerationEngine,
    GenRequest,
    KVCacheAllocator,
    KVCacheConfig,
    PrefixCache,
    SamplingParams,
)
from repro.genai import KVCacheOOM
from repro.genai.kvcache import KVCacheUseAfterFree
from repro.obs.metrics import MetricsRegistry, set_metrics

pytestmark = pytest.mark.genai


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


def make_allocator(**overrides):
    base = dict(layers=1, heads=2, d_head=8, page_tokens=4,
                capacity_tokens=64, max_seq=32)
    base.update(overrides)
    return KVCacheAllocator(KVCacheConfig(**base))


SMALL = dict(vocab=48, max_seq=32, d_model=16, heads=2, layers=1, seed=4,
             max_batch=2, page_tokens=4, capacity_tokens=128,
             smallest_bucket=8, retain_kv=True)


def small_engine(**overrides):
    cfg = dict(SMALL)
    cfg.update(overrides)
    return GenerationEngine(GenerationConfig(**cfg))


def shared_prefix_prompts(rng, n, prefix_len, vocab=48, suffix_lo=1, suffix_hi=5):
    shared = [int(t) for t in rng.integers(0, vocab, size=prefix_len)]
    return [
        shared + [int(t) for t in rng.integers(0, vocab, size=int(k))]
        for k in rng.integers(suffix_lo, suffix_hi, size=n)
    ]


class TestPrefixTrie:
    def _retired_slab(self, allocator, seq_id, tokens):
        slab = allocator.alloc(seq_id, len(tokens))
        slab.length = len(tokens)
        allocator.release(slab, evictable=True)
        return slab

    def test_match_finds_deepest_registered_prefix(self):
        allocator = make_allocator()
        cache = PrefixCache(min_prefix=4)
        path = [1, 2, 3, 4, 5, 6, 7, 8]
        slab = self._retired_slab(allocator, "a", path)
        cache.insert(path, slab)
        # Diverging after 6 tokens still finds depth 6.
        got = cache.match([1, 2, 3, 4, 5, 6, 40, 41])
        assert got == (slab, 6)
        # An identical prompt matches, but never the whole thing: the
        # caller must decode the last token itself for sampling logits.
        assert cache.match(path) == (slab, 7)

    def test_min_prefix_floor(self):
        allocator = make_allocator()
        cache = PrefixCache(min_prefix=4)
        slab = self._retired_slab(allocator, "a", [1, 2, 3, 4, 5, 6])
        cache.insert([1, 2, 3, 4, 5, 6], slab)
        assert cache.match([1, 2, 3, 9]) is None        # depth 3 < floor
        assert cache.match([1, 2, 3, 4]) is None        # limit 3 < floor
        assert cache.match([1, 2, 3, 4, 9]) == (slab, 4)

    def test_short_paths_never_registered(self):
        allocator = make_allocator()
        cache = PrefixCache(min_prefix=4)
        slab = self._retired_slab(allocator, "a", [7, 7, 7])
        cache.insert([7, 7, 7], slab)
        assert len(cache) == 0

    def test_freed_entries_pruned_lazily(self):
        allocator = make_allocator()
        cache = PrefixCache(min_prefix=4)
        path = [3, 1, 4, 1, 5, 9]
        slab = self._retired_slab(allocator, "a", path)
        cache.insert(path, slab)
        # Evict the parent: the registration goes stale, and the next
        # walk must skip (and unlink) it instead of handing it out.
        held = []
        while not slab.freed:
            try:
                held.append(allocator.alloc(f"fill-{len(held)}", 16))
            except KVCacheOOM:
                break
        assert slab.freed
        assert cache.match(path + [2]) is None

    def test_max_entries_drops_oldest_registration(self):
        allocator = make_allocator(capacity_tokens=256)
        cache = PrefixCache(min_prefix=4, max_entries=2)
        paths = [[i, i + 1, i + 2, i + 3, i + 4] for i in (10, 20, 30)]
        slabs = [self._retired_slab(allocator, f"s{i}", p)
                 for i, p in enumerate(paths)]
        for path, slab in zip(paths, slabs):
            cache.insert(path, slab)
        assert len(cache) == 2
        assert cache.match(paths[0] + [1]) is None      # oldest dropped
        assert cache.match(paths[2] + [1]) == (slabs[2], 5)


class TestCopyOnWriteSharing:
    def test_shared_views_are_read_only(self):
        allocator = make_allocator()
        parent = allocator.alloc("parent", 8)
        parent.length = 8
        allocator.release(parent, evictable=True)
        child = allocator.share(parent, "child", 6)
        assert child.shared and child.length == 6
        with pytest.raises(ValueError):
            child.k(0)[:, 0, :] = 1.0
        allocator.release(child)

    def test_materialize_copies_bit_identically(self):
        allocator = make_allocator()
        parent = allocator.alloc("parent", 8)
        rng = np.random.default_rng(0)
        for layer in range(allocator.config.layers):
            parent.k(layer)[:] = rng.standard_normal(parent.k(layer).shape)
            parent.v(layer)[:] = rng.standard_normal(parent.v(layer).shape)
        parent.length = 8
        want_k = parent.k(0)[:, :6, :].copy()
        allocator.release(parent, evictable=True)
        child = allocator.share(parent, "child", 6)
        owned = allocator.materialize(child, 12)
        assert not owned.shared
        assert owned.length == 6
        np.testing.assert_array_equal(owned.k(0)[:, :6, :], want_k)
        owned.k(0)[:, 6, :] = 7.0  # writable again
        allocator.release(owned)

    def test_parent_eviction_leaves_shared_pages_alive(self):
        allocator = make_allocator()
        parent = allocator.alloc("parent", 8)
        for layer in range(allocator.config.layers):
            parent.k(layer)[:] = 3.25
            parent.v(layer)[:] = -1.5
        parent.length = 8
        allocator.release(parent, evictable=True)
        child = allocator.share(parent, "child", 8)
        # Force the retired parent out via allocation pressure (the
        # child's ref keeps the pages off the free list, so this arena
        # eventually OOMs — by then the parent must have been evicted).
        held = []
        while not parent.freed:
            try:
                held.append(allocator.alloc(f"fill-{len(held)}", 16))
            except KVCacheOOM:
                break
        assert parent.freed
        for filler in held:  # free the pressure; the pin is what's under test
            allocator.release(filler, evictable=False)
        # The child's refcount pinned the extent: its rows still read.
        np.testing.assert_array_equal(
            child.k(0)[:, :8, :], np.full_like(child.k(0)[:, :8, :], 3.25)
        )
        owned = allocator.materialize(child, 10)
        np.testing.assert_array_equal(
            owned.v(0)[:, :8, :], np.full_like(owned.v(0)[:, :8, :], -1.5)
        )
        allocator.release(owned)
        assert allocator.check().ok

    def test_share_of_freed_parent_rejected(self):
        allocator = make_allocator()
        parent = allocator.alloc("parent", 8)
        parent.length = 8
        allocator.release(parent, evictable=False)
        with pytest.raises(KVCacheUseAfterFree):
            allocator.share(parent, "child", 4)

    def test_grow_on_shared_slab_materializes_first(self):
        allocator = make_allocator()
        parent = allocator.alloc("parent", 8)
        parent.k(0)[:] = 2.0
        parent.length = 8
        allocator.release(parent, evictable=True)
        child = allocator.share(parent, "child", 8)
        grown = allocator.grow(child, 9)
        assert not grown.shared
        np.testing.assert_array_equal(
            grown.k(0)[:, :8, :], np.full_like(grown.k(0)[:, :8, :], 2.0)
        )
        grown.k(0)[:, 8, :] = 5.0
        allocator.release(grown)


@pytest.mark.sanitize
class TestPrefixBitIdentity:
    """Prefix-cached generation == cold generation, token for token."""

    def _tokens(self, engine, prompts, params):
        try:
            requests = [
                GenRequest(f"r{i}", list(p), params)
                for i, p in enumerate(prompts)
            ]
            results = engine.generate(requests)
            assert all(r.finish_reason != "error" for r in results)
            return [r.tokens for r in results]
        finally:
            engine.close()

    def test_random_shared_prefixes_token_identical(self):
        rng = np.random.default_rng(29)
        params = SamplingParams(max_tokens=6, temperature=0.8, seed=7)
        for trial in range(3):
            prompts = shared_prefix_prompts(
                rng, n=5, prefix_len=int(rng.integers(8, 14))
            )
            cold = self._tokens(
                small_engine(sanitize=True), prompts, params
            )
            warm_engine = small_engine(prefix_cache=True, sanitize=True)
            sanitizer = warm_engine.sanitizer
            warm = self._tokens(warm_engine, prompts, params)
            assert warm == cold, f"trial {trial}: prefix cache changed tokens"
            stats = warm_engine.stats()
            assert stats["prefix_hits"] > 0
            assert stats["prefix_hit_tokens"] >= stats["prefix_hits"] * 4
            report = sanitizer.report()
            assert not report.races
            assert not report.lock_cycles
            assert not report.lifecycle

    def test_identical_after_parent_eviction(self):
        """A tiny arena evicts retired parents between requests; stale
        trie entries must fall back to cold prefill, shared children must
        survive via their page refcounts — tokens identical throughout."""
        rng = np.random.default_rng(31)
        prompts = shared_prefix_prompts(rng, n=8, prefix_len=10)
        params = SamplingParams(max_tokens=6, temperature=0.6, seed=3)
        tight = dict(capacity_tokens=64, max_batch=2)
        cold = self._tokens(small_engine(sanitize=True, **tight), prompts, params)
        warm_engine = small_engine(prefix_cache=True, sanitize=True, **tight)
        warm = self._tokens(warm_engine, prompts, params)
        assert warm == cold
        report = warm_engine.sanitizer.report()
        assert not report.races and not report.lock_cycles and not report.lifecycle

    def test_disjoint_prompts_never_hit(self):
        rng = np.random.default_rng(37)
        prompts = [
            [int(t) + 1 for t in rng.integers(0, 10, size=6) + 10 * i]
            for i in range(4)
        ]
        engine = small_engine(prefix_cache=True)
        self._tokens(engine, prompts, SamplingParams(max_tokens=4))
        assert engine.stats()["prefix_hits"] == 0
