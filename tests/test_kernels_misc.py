"""Tests for layout packing, pooling, elementwise, FC, deconv and resize."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    avg_pool2d,
    batch_norm,
    conv_transpose2d,
    eltwise_max,
    fully_connected,
    global_avg_pool2d,
    max_pool2d,
    pack_nc4hw4,
    pad_nd,
    prelu,
    reduce_mean,
    relu,
    relu6,
    resize2d,
    sigmoid,
    softmax,
    unpack_nc4hw4,
)

from .gold import avg_pool2d_naive, conv_transpose2d_naive, max_pool2d_naive

RNG = np.random.default_rng(23)


class TestLayout:
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 19),
        h=st.integers(1, 9),
        w=st.integers(1, 9),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_round_trip(self, n, c, h, w):
        x = RNG.standard_normal((n, c, h, w)).astype(np.float32)
        packed = pack_nc4hw4(x)
        assert packed.shape == (n, -(-c // 4), h, w, 4)
        np.testing.assert_array_equal(unpack_nc4hw4(packed, c), x)

    def test_padding_lanes_are_zero(self):
        x = np.ones((1, 5, 2, 2), np.float32)
        packed = pack_nc4hw4(x)
        # channels 5..7 in the second block are padding
        np.testing.assert_array_equal(packed[0, 1, :, :, 1:], 0)

    def test_pack_rejects_bad_rank(self):
        with pytest.raises(ValueError, match="NCHW"):
            pack_nc4hw4(np.zeros((3, 3)))

    def test_unpack_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="N, C4, H, W, 4"):
            unpack_nc4hw4(np.zeros((1, 2, 3, 3)), 4)
        with pytest.raises(ValueError, match="cannot unpack"):
            unpack_nc4hw4(np.zeros((1, 1, 2, 2, 4)), 9)

    def test_packed_memory_is_lane_contiguous(self):
        x = RNG.standard_normal((1, 8, 3, 3)).astype(np.float32)
        packed = pack_nc4hw4(x)
        flat = packed.reshape(-1)
        # first 4 values in memory are channels 0..3 of pixel (0,0)
        np.testing.assert_array_equal(flat[:4], x[0, :4, 0, 0])

    @pytest.mark.parametrize("ic,oc", [(8, 8), (5, 7), (16, 4), (3, 12)])
    def test_packed_1x1_conv_matches_unpacked(self, ic, oc):
        from repro.kernels import conv2d_1x1, conv2d_1x1_packed

        x = RNG.standard_normal((2, ic, 6, 6)).astype(np.float32)
        w = RNG.standard_normal((oc, ic, 1, 1)).astype(np.float32)
        b = RNG.standard_normal(oc).astype(np.float32)
        want = conv2d_1x1(x, w, b)
        packed = conv2d_1x1_packed(pack_nc4hw4(x), w, b)
        got = unpack_nc4hw4(packed, oc)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_packed_1x1_chain_never_unpacks(self):
        """Packed ops compose: two 1x1 convs stay in NC4HW4 throughout."""
        from repro.kernels import conv2d_1x1, conv2d_1x1_packed

        x = RNG.standard_normal((1, 8, 4, 4)).astype(np.float32)
        w1 = RNG.standard_normal((12, 8, 1, 1)).astype(np.float32)
        w2 = RNG.standard_normal((6, 12, 1, 1)).astype(np.float32)
        want = conv2d_1x1(conv2d_1x1(x, w1), w2)
        packed = conv2d_1x1_packed(conv2d_1x1_packed(pack_nc4hw4(x), w1), w2)
        np.testing.assert_allclose(unpack_nc4hw4(packed, 6), want, atol=1e-4)

    def test_packed_1x1_rejects_bad_shapes(self):
        from repro.kernels import conv2d_1x1_packed

        with pytest.raises(ValueError, match="packed"):
            conv2d_1x1_packed(np.zeros((1, 4, 4, 4)), np.zeros((4, 4, 1, 1)))
        with pytest.raises(ValueError, match="1x1"):
            conv2d_1x1_packed(np.zeros((1, 1, 4, 4, 4)), np.zeros((4, 4, 3, 3)))
        with pytest.raises(ValueError, match="channels"):
            conv2d_1x1_packed(
                np.zeros((1, 1, 4, 4, 4), np.float32),
                np.zeros((4, 9, 1, 1), np.float32),
            )


class TestPooling:
    @pytest.mark.parametrize(
        "kernel,stride,pads,out_hw",
        [((2, 2), (2, 2), (0, 0, 0, 0), (4, 4)),
         ((3, 3), (2, 2), (1, 1, 1, 1), (4, 4)),
         ((3, 3), (1, 1), (1, 1, 1, 1), (8, 8))],
    )
    def test_max_pool_matches_naive(self, kernel, stride, pads, out_hw):
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        got = max_pool2d(x, kernel, stride, pads, out_hw)
        want = max_pool2d_naive(x, kernel, stride, pads, out_hw)
        np.testing.assert_array_equal(got, want)

    def test_max_pool_padding_never_wins(self):
        x = -np.ones((1, 1, 4, 4), np.float32)
        got = max_pool2d(x, (3, 3), (1, 1), (1, 1, 1, 1), (4, 4))
        np.testing.assert_array_equal(got, -np.ones((1, 1, 4, 4), np.float32))

    @pytest.mark.parametrize("count_include_pad", [False, True])
    def test_avg_pool_matches_naive(self, count_include_pad):
        x = RNG.standard_normal((1, 2, 9, 9)).astype(np.float32)
        got = avg_pool2d(x, (3, 3), (2, 2), (1, 1, 1, 1), (5, 5), count_include_pad)
        want = avg_pool2d_naive(x, (3, 3), (2, 2), (1, 1, 1, 1), (5, 5), count_include_pad)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_ceil_mode_growth_region(self):
        # output larger than exact coverage: pooling must grow pad on the right
        x = RNG.standard_normal((1, 1, 7, 7)).astype(np.float32)
        got = max_pool2d(x, (2, 2), (2, 2), (0, 0, 0, 0), (4, 4))
        want = max_pool2d_naive(x, (2, 2), (2, 2), (0, 0, 0, 0), (4, 4))
        np.testing.assert_array_equal(got, want)

    def test_global_avg_pool(self):
        x = RNG.standard_normal((2, 5, 7, 9)).astype(np.float32)
        got = global_avg_pool2d(x)
        assert got.shape == (2, 5, 1, 1)
        np.testing.assert_allclose(got[:, :, 0, 0], x.mean(axis=(2, 3)), atol=1e-6)


class TestElementwise:
    def test_relu_relu6(self):
        x = np.array([-3.0, 0.0, 3.0, 9.0], np.float32)
        np.testing.assert_array_equal(relu(x), [0, 0, 3, 9])
        np.testing.assert_array_equal(relu6(x), [0, 0, 3, 6])

    def test_prelu(self):
        x = np.array([[[-2.0], [4.0]]]).reshape(1, 2, 1, 1)
        slope = np.array([0.5, 0.1], np.float64)
        got = prelu(x, slope)
        np.testing.assert_allclose(got.ravel(), [-1.0, 4.0])

    def test_sigmoid_stable_at_extremes(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        got = sigmoid(x)
        assert np.isfinite(got).all()
        np.testing.assert_allclose(got, [0.0, 0.5, 1.0], atol=1e-12)

    def test_softmax_rows_sum_to_one(self):
        x = RNG.standard_normal((4, 10)).astype(np.float32) * 50
        got = softmax(x, axis=1)
        np.testing.assert_allclose(got.sum(axis=1), 1.0, atol=1e-5)
        assert np.isfinite(got).all()

    def test_batch_norm_matches_definition(self):
        x = RNG.standard_normal((2, 3, 4, 4)).astype(np.float32)
        gamma = RNG.standard_normal(3).astype(np.float32)
        beta = RNG.standard_normal(3).astype(np.float32)
        mean = RNG.standard_normal(3).astype(np.float32)
        var = np.abs(RNG.standard_normal(3)).astype(np.float32) + 0.5
        got = batch_norm(x, gamma, beta, mean, var, 1e-5)
        g = gamma.reshape(1, 3, 1, 1)
        want = g * (x - mean.reshape(1, 3, 1, 1)) / np.sqrt(
            var.reshape(1, 3, 1, 1) + 1e-5
        ) + beta.reshape(1, 3, 1, 1)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_eltwise_max(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        np.testing.assert_array_equal(eltwise_max(a, b), [3.0, 5.0])


class TestMisc:
    def test_fc_matches_matmul(self):
        x = RNG.standard_normal((3, 4, 2, 2)).astype(np.float32)
        w = RNG.standard_normal((7, 16)).astype(np.float32)
        b = RNG.standard_normal(7).astype(np.float32)
        got = fully_connected(x, w, b)
        want = x.reshape(3, -1) @ w.T + b
        np.testing.assert_allclose(got, want, atol=1e-4)

    @pytest.mark.parametrize(
        "stride,pads,output_padding",
        [((1, 1), (0, 0, 0, 0), (0, 0)), ((2, 2), (1, 1, 1, 1), (0, 0)),
         ((2, 2), (1, 1, 1, 1), (1, 1))],
    )
    def test_deconv_matches_naive(self, stride, pads, output_padding):
        x = RNG.standard_normal((1, 3, 6, 6)).astype(np.float32)
        w = RNG.standard_normal((3, 5, 3, 3)).astype(np.float32)
        got = conv_transpose2d(x, w, None, stride, pads, output_padding)
        want = conv_transpose2d_naive(x, w, None, stride, pads, output_padding)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_resize_nearest(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        got = resize2d(x, (2, 2), "nearest")
        np.testing.assert_array_equal(got[0, 0, 0], [0, 0, 1, 1])
        np.testing.assert_array_equal(got[0, 0, 3], [2, 2, 3, 3])

    def test_resize_bilinear_preserves_constant(self):
        x = np.full((1, 2, 4, 4), 3.5, np.float32)
        got = resize2d(x, (2, 2), "bilinear")
        np.testing.assert_allclose(got, 3.5, atol=1e-6)

    def test_resize_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            resize2d(np.zeros((1, 1, 2, 2)), (2, 2), "cubic")

    def test_pad_nd(self):
        x = np.ones((1, 1, 2, 2), np.float32)
        got = pad_nd(x, (0, 0, 0, 0, 1, 1, 2, 2), value=9.0)
        assert got.shape == (1, 1, 4, 6)
        assert got[0, 0, 0, 0] == 9.0
        assert got[0, 0, 1, 2] == 1.0

    def test_pad_nd_bad_length(self):
        with pytest.raises(ValueError, match="pads length"):
            pad_nd(np.zeros((2, 2)), (1, 1))

    def test_reduce_mean(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        np.testing.assert_allclose(
            reduce_mean(x, (2, 3), keepdims=False), x.mean(axis=(2, 3)), atol=1e-12
        )
