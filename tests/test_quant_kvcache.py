"""Quantized KV-cache mode (``KVCacheConfig(kv_dtype="int8")``).

Contracts under test: per-row symmetric quantize-on-write / dequant-on-
read, the >= 3x capacity win at equal arena bytes, bit-verbatim payload
+ scales movement through grow/COW/materialize, the scale-table reset on
fresh carves, the memcheck extent rule for int8 arenas, and engine-level
determinism (seeded replay, prefix on/off identity, chaos storm).
"""

import numpy as np
import pytest

from repro.analysis import check_slab_plan, has_errors
from repro.genai import (
    GenerationConfig,
    GenerationEngine,
    KVCacheAllocator,
    KVCacheConfig,
    SamplingParams,
)
from repro.genai.kvcache import KVCacheUseAfterFree
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.quant import dequantize_rows, quantize_rows

pytestmark = pytest.mark.quant

RNG = np.random.default_rng(31)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


def make_config(**overrides):
    base = dict(layers=2, heads=2, d_head=8, page_tokens=8,
                capacity_tokens=128, max_seq=64, kv_dtype="int8")
    base.update(overrides)
    return KVCacheConfig(**base)


def rows(heads, n, d_head, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (heads, n, d_head)).astype(np.float32)


class TestConfig:
    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            make_config(kv_dtype="float16")

    def test_int8_requires_aligned_head_dim(self):
        with pytest.raises(ValueError):
            make_config(d_head=6)

    def test_capacity_ratio_at_least_3x(self):
        # both the bench geometry (d_head=16) and the chaos geometry
        # (d_head=8) must clear the acceptance bar
        for d_head in (8, 16):
            q = make_config(d_head=d_head)
            fp = make_config(d_head=d_head, kv_dtype="float32")
            assert fp.per_token_bytes / q.per_token_bytes >= 3.0

    def test_per_token_bytes_includes_row_scales(self):
        cfg = make_config()
        # layers * {k,v} * (heads*d_head int8 payload + one f32 scale)
        assert cfg.per_token_bytes == 2 * 2 * (2 * 8 * 1 + 4)


class TestRowCodec:
    def test_round_trip_error_bounded(self):
        x = rows(2, 6, 8, seed=1)
        q, scales = quantize_rows(x)
        back = dequantize_rows(q, scales)
        # symmetric per-row: error <= scale/2 = max_abs/254 per row
        per_row_bound = np.abs(x).max(axis=(0, 2)) / 254 + 1e-7
        err = np.abs(back - x).max(axis=(0, 2))
        assert (err <= per_row_bound).all()

    def test_zero_scale_sentinel_round_trips_to_zero(self):
        x = np.zeros((2, 3, 8), np.float32)
        q, scales = quantize_rows(x)
        assert not scales.any()
        np.testing.assert_array_equal(dequantize_rows(q, scales), x)


class TestSlab:
    def test_raw_view_is_int8_read_is_float32(self):
        alloc = KVCacheAllocator(make_config())
        slab = alloc.alloc("s0", 8)
        assert slab.k(0).dtype == np.int8
        assert slab.k_read(0).dtype == np.float32

    def test_write_read_round_trip_bounded(self):
        alloc = KVCacheAllocator(make_config())
        slab = alloc.alloc("s0", 8)
        x = rows(2, 5, 8, seed=2)
        slab.write_k(0, 0, x)
        got = slab.k_read(0)[:, :5]
        assert np.abs(got - x).max() <= np.abs(x).max() / 254 + 1e-7

    def test_fresh_carve_resets_recycled_scales(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=32))
        first = alloc.alloc("a", 32)
        # poison the whole arena through the first owner's raw bytes,
        # including where the next owner's scales table will land
        first.buffer[first.offset_bytes : first.offset_bytes + first.nbytes] = 0x7F
        alloc.release(first)
        second = alloc.alloc("b", 32)
        # unwritten rows must dequantize to exact zeros, not junk
        np.testing.assert_array_equal(
            second.k_read(0), np.zeros_like(second.k_read(0))
        )
        alloc.release(second)

    def test_grow_moves_rows_and_scales_verbatim(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=128))
        slab = alloc.alloc("s0", 8)
        x = rows(2, 8, 8, seed=3)
        for layer in range(2):
            slab.write_k(layer, 0, x)
            slab.write_v(layer, 0, -x)
        slab.length = 8
        before = slab.k_read(0)[:, :8].copy()
        raw_before = slab.k(0)[:, :8].copy()
        grown = alloc.grow(slab, 40)
        assert grown.capacity > 8
        np.testing.assert_array_equal(grown.k(0)[:, :8], raw_before)
        np.testing.assert_array_equal(grown.k_read(0)[:, :8], before)
        alloc.release(grown)

    def test_cow_share_and_materialize_are_bit_identical(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=128))
        parent = alloc.alloc("p", 16)
        x = rows(2, 16, 8, seed=4)
        for layer in range(2):
            parent.write_k(layer, 0, x)
            parent.write_v(layer, 0, 2 * x)
        parent.length = 16
        alloc.release(parent, evictable=True)
        child = alloc.share(parent, "c", 16)
        assert child.shared
        np.testing.assert_array_equal(child.k(1), parent.k(1))
        # a shared view must reject writes outright
        with pytest.raises((ValueError, RuntimeError)):
            child.write_k(0, 0, x[:, :1])
        owned = alloc.materialize(child, 24)
        assert not owned.shared
        np.testing.assert_array_equal(owned.k(1)[:, :16], parent.k(1)[:, :16])
        np.testing.assert_array_equal(
            owned.k_read(1)[:, :16], parent.k_read(1)[:, :16]
        )
        alloc.release(owned)

    def test_use_after_free_raises_through_read(self):
        alloc = KVCacheAllocator(make_config())
        slab = alloc.alloc("s0", 8)
        alloc.release(slab, evictable=False)
        with pytest.raises(KVCacheUseAfterFree):
            slab.k_read(0)


class TestMemcheck:
    def test_live_int8_layout_is_clean(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=128))
        slabs = [alloc.alloc(f"s{i}", 8 * (i + 1)) for i in range(3)]
        report = alloc.check()
        assert not has_errors(report.diagnostics)
        for slab in slabs:
            alloc.release(slab)

    def test_under_carved_arena_flags_quant_extent(self):
        # an int8 slab carved without room for its scales table
        cfg = make_config()
        alloc = KVCacheAllocator(make_config(capacity_tokens=128))
        slab = alloc.alloc("s0", 8)
        plan = alloc.to_memory_plan()
        report = check_slab_plan(
            plan,
            page_bytes=cfg.page_bytes,
            per_token_bytes=cfg.per_token_bytes,
            token_capacities={slab.seq_id: slab.capacity * 2},  # lie: 2x rows
        )
        assert any(d.rule == "mem-quant-extent" for d in report.diagnostics)
        alloc.release(slab)

    def test_fp_bytes_on_int8_arena_flags_quant_extent(self):
        # fp32 accounting on an int8 arena over-carves ~3-4x: the rule
        # must notice nbytes >= 2*need + page
        fp = make_config(kv_dtype="float32")
        q = make_config()
        alloc = KVCacheAllocator(fp)
        slab = alloc.alloc("s0", 8)
        plan = alloc.to_memory_plan()
        report = check_slab_plan(
            plan,
            page_bytes=q.page_bytes,
            per_token_bytes=q.per_token_bytes,
            token_capacities={slab.seq_id: slab.capacity},
        )
        assert any(d.rule == "mem-quant-extent" for d in report.diagnostics)
        alloc.release(slab)


def engine_config(**overrides):
    base = dict(vocab=64, max_seq=24, d_model=16, heads=2, layers=1,
                seed=11, max_batch=2, page_tokens=4, capacity_tokens=64,
                smallest_bucket=8, kv_dtype="int8")
    base.update(overrides)
    return GenerationConfig(**base)


def generate(config, n_prompts=4, max_tokens=8, prompt_seed=11):
    engine = GenerationEngine(config)
    try:
        gen = np.random.default_rng(prompt_seed)
        prompts = [
            [int(t) for t in gen.integers(0, config.vocab, size=int(n))]
            for n in gen.integers(2, 7, size=n_prompts)
        ]
        results = engine.generate(prompts, SamplingParams(max_tokens=max_tokens))
        return [r.tokens for r in results]
    finally:
        engine.close()


class TestEngine:
    def test_seeded_replay_is_bit_identical(self):
        assert generate(engine_config()) == generate(engine_config())

    def test_quantized_weights_replay_is_bit_identical(self):
        cfg = dict(quantize_weights=True)
        assert generate(engine_config(**cfg)) == generate(engine_config(**cfg))

    def test_prefix_cache_on_off_identity(self):
        # single-layer: decode-written and prefill-written rows agree
        # bitwise, so the prefix cache cannot perturb quantized tokens
        off = generate(engine_config())
        on = generate(engine_config(prefix_cache=True, retain_kv=True))
        assert off == on

    def test_stats_report_quantized_bytes_per_token(self):
        engine = GenerationEngine(engine_config())
        try:
            q_bpt = engine.stats()["kv_bytes_per_token"]
        finally:
            engine.close()
        engine = GenerationEngine(engine_config(kv_dtype="float32"))
        try:
            fp_bpt = engine.stats()["kv_bytes_per_token"]
        finally:
            engine.close()
        assert fp_bpt / q_bpt >= 3.0


@pytest.mark.chaos
class TestQuantizedChaos:
    def test_small_storm_with_int8_kv_is_clean(self):
        from repro.faults.chaos import run_chaos_storm

        report = run_chaos_storm(seed=5, target_faults=12, max_rounds=12,
                                 kv_dtype="int8")
        assert report.ok, report.summary()
        assert report.injected >= 12
        assert report.mismatched == 0 and report.crashes == 0
