"""Shared-memory tensor transport: round-trips, generation guards,
ownership rules and the grow-by-replacement contract.

All within one process — attach maps the same segment a second time, so
writer-view / reader-view pairs exercise exactly the cross-process
layout without spawning workers (the router tests do that part).
"""

import numpy as np
import pytest

from repro.cluster import ShmSegment, StaleSegment, payload_bytes
from repro.cluster.shm import HEADER_BYTES

RNG = np.random.default_rng(5)


def _arrays():
    return {
        "a": RNG.standard_normal((3, 5)).astype(np.float32),
        "b": RNG.integers(0, 99, (7,)).astype(np.int64),
        "c": np.float32(2.5).reshape(()),  # 0-d tensors must survive too
    }


@pytest.fixture
def seg():
    s = ShmSegment.create("repro-test-shm", 1 << 16)
    try:
        yield s
    finally:
        s.unlink()


class TestRoundTrip:
    def test_write_read_bit_identical(self, seg):
        arrays = _arrays()
        specs = seg.write_tensors(arrays, generation=1)
        out = seg.read_tensors(specs, generation=1)
        assert set(out) == set(arrays)
        for name in arrays:
            assert out[name].dtype == arrays[name].dtype
            np.testing.assert_array_equal(out[name], arrays[name])

    def test_reader_view_is_zero_copy(self, seg):
        arrays = {"x": np.zeros((4,), dtype=np.float32)}
        specs = seg.write_tensors(arrays, generation=1)
        view = seg.read_tensors(specs, generation=1)["x"]
        # Mutating the segment through a fresh write is visible through
        # the earlier view — proof it maps the segment, not a copy.
        seg.write_tensors({"x": np.full((4,), 7.0, np.float32)}, generation=2)
        np.testing.assert_array_equal(view, np.full((4,), 7.0, np.float32))

    def test_copy_detaches_from_segment(self, seg):
        arrays = {"x": np.ones((4,), dtype=np.float32)}
        specs = seg.write_tensors(arrays, generation=1)
        out = seg.read_tensors(specs, generation=1, copy=True)["x"]
        seg.write_tensors({"x": np.zeros((4,), np.float32)}, generation=2)
        np.testing.assert_array_equal(out, np.ones((4,), np.float32))

    def test_attach_sees_owner_writes(self, seg):
        arrays = _arrays()
        specs = seg.write_tensors(arrays, generation=3)
        other = ShmSegment.attach(seg.name)
        try:
            out = other.read_tensors(specs, generation=3)
            for name in arrays:
                np.testing.assert_array_equal(out[name], arrays[name])
        finally:
            other.close()


class TestGenerationGuard:
    def test_stale_generation_is_typed(self, seg):
        specs = seg.write_tensors({"x": np.ones((2,), np.float32)}, generation=5)
        with pytest.raises(StaleSegment) as exc:
            seg.read_tensors(specs, generation=4)
        assert exc.value.expected == 4
        assert exc.value.found == 5

    def test_recycled_segment_refuses_old_specs(self, seg):
        # The exact bug the guard exists for: a reply referencing specs
        # from request N arriving after the segment was recycled for N+1.
        old_specs = seg.write_tensors({"x": np.ones((2,), np.float32)}, 1)
        seg.write_tensors({"x": np.zeros((8,), np.float32)}, 2)
        with pytest.raises(StaleSegment):
            seg.read_tensors(old_specs, generation=1)

    def test_stamp_round_trips_large_generations(self, seg):
        seg.stamp(2**40 + 17)
        assert seg.generation == 2**40 + 17


class TestSizingAndGrowth:
    def test_payload_bytes_accounts_header_and_alignment(self):
        arrays = {"x": np.zeros((1,), np.float32)}  # 4 bytes -> 1 aligned line
        assert payload_bytes(arrays) == HEADER_BYTES + 64
        assert payload_bytes({}) == HEADER_BYTES

    def test_oversized_payload_raises_for_grow(self):
        seg = ShmSegment.create("repro-test-shm-small", HEADER_BYTES + 64)
        try:
            big = {"x": np.zeros((1 << 12,), np.float32)}
            with pytest.raises(ValueError):
                seg.write_tensors(big, generation=1)
            # The router's grow path: replacement segment sized to fit.
            grown = ShmSegment.create(
                "repro-test-shm-grown", payload_bytes(big) * 2)
            try:
                specs = grown.write_tensors(big, generation=1)
                out = grown.read_tensors(specs, generation=1)
                np.testing.assert_array_equal(out["x"], big["x"])
            finally:
                grown.unlink()
        finally:
            seg.unlink()


class TestOwnership:
    def test_attached_segment_cannot_unlink(self, seg):
        other = ShmSegment.attach(seg.name)
        try:
            assert not other.owner
            with pytest.raises(RuntimeError):
                other.unlink()
        finally:
            other.close()

    def test_close_and_unlink_idempotent(self):
        seg = ShmSegment.create("repro-test-shm-idem", 1 << 12)
        seg.close()
        seg.close()
        seg.unlink()
        seg.unlink()

    def test_create_zeroes_header(self):
        seg = ShmSegment.create("repro-test-shm-hdr", 1 << 12)
        try:
            assert seg.generation == 0
        finally:
            seg.unlink()
