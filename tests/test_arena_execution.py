"""Tests that decoupled execution really lands activations in the arena."""

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.ir import GraphBuilder

RNG = np.random.default_rng(141)


def net():
    b = GraphBuilder("arena", seed=6)
    x = b.input("in", (1, 4, 16, 16))
    x = b.conv(x, oc=8, kernel=3, activation="relu")
    y = b.reshape(x, (1, 8 * 16 * 16))       # view-producing op
    y = b.reshape(y, (1, 8, 16, 16))
    x = b.add(x, y)
    x = b.fc(b.global_avg_pool(x), units=3)
    b.output(b.softmax(x))
    return b.finish()


class TestArenaExecution:
    def test_outputs_detached_from_arena(self):
        session = Session(net(), SessionConfig(arena_execution=True))
        feed = {"in": RNG.standard_normal((1, 4, 16, 16)).astype(np.float32)}
        first = list(session.run(feed).values())[0]
        snapshot = first.copy()
        feed2 = {"in": RNG.standard_normal((1, 4, 16, 16)).astype(np.float32)}
        second = list(session.run(feed2).values())[0]
        # the first output must survive the second run unchanged
        np.testing.assert_array_equal(first, snapshot)
        assert not np.may_share_memory(first, second)

    def test_intermediates_live_in_arena(self):
        session = Session(net(), SessionConfig(arena_execution=True))
        feed = {"in": RNG.standard_normal((1, 4, 16, 16)).astype(np.float32)}
        # peek via profiled run's env contract: re-run and inspect arena bytes
        before = session._arena._buffer.copy()
        session.run(feed)
        after = session._arena._buffer
        assert not np.array_equal(before, after)  # the arena was written

    def test_view_ops_through_arena_are_correct(self):
        """reshape->reshape->add round-trip must be exact despite slot reuse."""
        from repro.core.reference import execute_reference

        g = net()
        feed = {"in": RNG.standard_normal((1, 4, 16, 16)).astype(np.float32)}
        want = execute_reference(g, feed)[g.outputs[0]]
        got = list(Session(g, SessionConfig(arena_execution=True)).run(feed).values())[0]
        np.testing.assert_allclose(got, want, atol=1e-6)

    def test_non_decoupled_has_no_arena(self):
        session = Session(net(), SessionConfig(decouple=False))
        assert session._arena is None
        feed = {"in": RNG.standard_normal((1, 4, 16, 16)).astype(np.float32)}
        out = list(session.run(feed).values())[0]
        assert out.sum() == pytest.approx(1.0, abs=1e-4)

    def test_many_runs_stable(self):
        session = Session(net(), SessionConfig(arena_execution=True))
        feed = {"in": RNG.standard_normal((1, 4, 16, 16)).astype(np.float32)}
        first = list(session.run(feed).values())[0].copy()
        for _ in range(10):
            np.testing.assert_array_equal(
                list(session.run(feed).values())[0], first
            )
