"""Tests for the command-line tools (repro.tools.cli)."""

import numpy as np
import pytest

from repro.ir import load_model, save_model
from repro.models import squeezenet_v1_1
from repro.tools.cli import main


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "model.rmnn")
    save_model(squeezenet_v1_1(input_size=64, classes=10), path)
    return path


class TestCli:
    def test_info(self, model_path, capsys):
        assert main(["info", model_path]) == 0
        out = capsys.readouterr().out
        assert "Conv2D" in out and "multiplications" in out

    def test_build(self, tmp_path, capsys):
        out_path = str(tmp_path / "m.rmnn")
        assert main(["build", "mobilenet_v1", "-o", out_path,
                     "--input-size", "64"]) == 0
        graph = load_model(out_path)
        assert graph.desc(graph.inputs[0]).shape == (1, 3, 64, 64)

    def test_build_unknown_model(self, tmp_path):
        assert main(["build", "vgg99", "-o", str(tmp_path / "x.rmnn")]) == 1

    def test_optimize(self, model_path, tmp_path, capsys):
        out_path = str(tmp_path / "opt.rmnn")
        assert main(["optimize", model_path, "-o", out_path]) == 0
        before = load_model(model_path)
        after = load_model(out_path)
        assert len(after.nodes) < len(before.nodes)

    def test_quantize(self, model_path, tmp_path, capsys):
        out_path = str(tmp_path / "q.rmnn")
        assert main(["quantize", model_path, "-o", out_path,
                     "--calibration-batches", "2"]) == 0
        quantized = load_model(out_path)
        assert any(v.dtype == np.int8 for v in quantized.constants.values())

    def test_prune(self, model_path, tmp_path, capsys):
        out_path = str(tmp_path / "p.rmnn")
        assert main(["prune", model_path, "-o", out_path, "--sparsity", "0.6"]) == 0
        assert "60.0% sparsity" in capsys.readouterr().out

    def test_fp16(self, model_path, tmp_path, capsys):
        out_path = str(tmp_path / "h.rmnn")
        assert main(["fp16", model_path, "-o", out_path]) == 0
        converted = load_model(out_path)
        assert any(v.dtype == np.float16 for v in converted.constants.values())

    def test_benchmark_with_profile(self, model_path, capsys):
        assert main(["benchmark", model_path, "--repeats", "2",
                     "--profile", "3"]) == 0
        out = capsys.readouterr().out
        assert "latency:" in out and "slowest operators:" in out

    def test_estimate(self, model_path, capsys):
        assert main(["estimate", model_path, "--device", "Mate20",
                     "--engine", "NCNN"]) == 0
        assert "ms modeled" in capsys.readouterr().out

    def test_estimate_unknown_device(self, model_path):
        assert main(["estimate", model_path, "--device", "Nokia"]) == 1

    def test_estimate_unknown_engine(self, model_path):
        assert main(["estimate", model_path, "--engine", "Caffe"]) == 1

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Mate20" in out and "Adreno" in out

    def test_schemes(self, model_path, capsys):
        assert main(["schemes", model_path]) == 0
        out = capsys.readouterr().out
        assert "gemm1x1" in out or "winograd" in out

    def test_missing_file(self):
        assert main(["info", "/nonexistent/model.rmnn"]) == 1

    def test_corrupt_file(self, tmp_path):
        bad = tmp_path / "bad.rmnn"
        bad.write_bytes(b"not a model at all")
        assert main(["info", str(bad)]) == 1

    def test_transformer_build_ignores_input_size(self, tmp_path):
        out_path = str(tmp_path / "t.rmnn")
        assert main(["build", "tiny_transformer", "-o", out_path]) == 0
        graph = load_model(out_path)
        assert graph.desc(graph.inputs[0]).dtype.value == "int32"

    def test_benchmark_int_input_model(self, tmp_path, capsys):
        out_path = str(tmp_path / "l.rmnn")
        assert main(["build", "lstm_classifier", "-o", out_path]) == 0
        assert main(["benchmark", out_path, "--repeats", "1"]) == 0

    def test_autotune(self, model_path, capsys):
        assert main(["autotune", model_path, "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "auto-tuned" in out and "agreement" in out

    def test_dot_export(self, model_path, tmp_path, capsys):
        out_path = str(tmp_path / "g.dot")
        assert main(["dot", model_path, "-o", out_path, "--schemes"]) == 0
        text = open(out_path).read()
        assert text.startswith("digraph")
        assert "Conv2D" in text and "->" in text
        assert "[sliding" in text or "[gemm1x1" in text or "[winograd" in text

    def test_dot_to_stdout(self, model_path, capsys):
        assert main(["dot", model_path]) == 0
        assert "digraph" in capsys.readouterr().out
