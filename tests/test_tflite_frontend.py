"""Tests for the TFLite-style frontend (index-based tensors, NHWC layouts)."""

import numpy as np
import pytest

from repro.converter import ConversionError, convert_tflite_like
from repro.core import Session
from repro.core.reference import execute_reference
from repro.ir import Op

RNG = np.random.default_rng(121)


def tflite_model():
    """conv(relu6) -> dwconv -> maxpool -> mean -> fc -> softmax, all NHWC."""
    conv_w = RNG.standard_normal((8, 3, 3, 3)).astype(np.float32) * 0.2  # OHWI
    conv_b = np.zeros(8, np.float32)
    dw_w = RNG.standard_normal((1, 3, 3, 8)).astype(np.float32) * 0.2    # 1HWC
    fc_w = RNG.standard_normal((5, 8)).astype(np.float32) * 0.3
    tensors = [
        {"name": "input", "shape": [1, 16, 16, 3]},        # 0 (NHWC)
        {"name": "conv_w", "shape": list(conv_w.shape), "data": conv_w},   # 1
        {"name": "conv_b", "shape": [8], "data": conv_b},  # 2
        {"name": "conv_out", "shape": None},               # 3
        {"name": "dw_w", "shape": list(dw_w.shape), "data": dw_w},  # 4
        {"name": "dw_out", "shape": None},                 # 5
        {"name": "pool_out", "shape": None},               # 6
        {"name": "mean_out", "shape": None},               # 7
        {"name": "flat", "shape": None},                   # 8
        {"name": "fc_w", "shape": list(fc_w.shape), "data": fc_w},  # 9
        {"name": "fc_out", "shape": None},                 # 10
        {"name": "prob", "shape": None},                   # 11
    ]
    operators = [
        {"opcode": "CONV_2D", "inputs": [0, 1, 2], "outputs": [3],
         "options": {"padding": "SAME", "stride_h": 2, "stride_w": 2,
                     "fused_activation": "RELU6"}},
        {"opcode": "DEPTHWISE_CONV_2D", "inputs": [3, 4], "outputs": [5],
         "options": {"padding": "SAME", "fused_activation": "RELU"}},
        {"opcode": "MAX_POOL_2D", "inputs": [5], "outputs": [6],
         "options": {"padding": "VALID", "filter_h": 2, "filter_w": 2}},
        {"opcode": "MEAN", "inputs": [6], "outputs": [7],
         "options": {"axes": (1, 2)}},
        {"opcode": "RESHAPE", "inputs": [7], "outputs": [8],
         "options": {"new_shape": [1, 8]}},
        {"opcode": "FULLY_CONNECTED", "inputs": [8, 9], "outputs": [10]},
        {"opcode": "SOFTMAX", "inputs": [10], "outputs": [11]},
    ]
    return {
        "name": "tfl",
        "tensors": tensors,
        "inputs": [0],
        "outputs": [11],
        "operators": operators,
    }


class TestTfliteFrontend:
    def test_converts_and_runs(self):
        g = convert_tflite_like(tflite_model())
        assert g.desc("input").shape == (1, 3, 16, 16)  # NHWC -> NCHW
        out = execute_reference(
            g, {"input": RNG.standard_normal((1, 3, 16, 16)).astype(np.float32)}
        )["prob"]
        assert out.shape == (1, 5)
        assert out.sum() == pytest.approx(1.0, abs=1e-5)

    def test_kernel_layout_transposed(self):
        g = convert_tflite_like(tflite_model())
        conv = next(n for n in g.nodes if n.op_type == Op.CONV2D)
        assert g.constants[conv.inputs[1]].shape == (8, 3, 3, 3)  # OIHW
        dw = next(n for n in g.nodes if n.op_type == Op.DEPTHWISE_CONV2D)
        assert g.constants[dw.inputs[1]].shape == (8, 1, 3, 3)

    def test_fused_activations_mapped(self):
        g = convert_tflite_like(tflite_model())
        conv = next(n for n in g.nodes if n.op_type == Op.CONV2D)
        assert conv.attrs["activation"] == "relu6"
        dw = next(n for n in g.nodes if n.op_type == Op.DEPTHWISE_CONV2D)
        assert dw.attrs["activation"] == "relu"

    def test_mean_becomes_global_avg_pool(self):
        g = convert_tflite_like(tflite_model())
        assert Op.GLOBAL_AVG_POOL in [n.op_type for n in g.nodes]

    def test_runs_in_session(self):
        g = convert_tflite_like(tflite_model())
        out = Session(g).run(
            {"input": RNG.standard_normal((1, 3, 16, 16)).astype(np.float32)}
        )
        assert list(out.values())[0].shape == (1, 5)

    def test_concat_axis_remapped(self):
        model = {
            "tensors": [
                {"name": "a", "shape": [1, 4, 4, 2]},
                {"name": "b", "shape": [1, 4, 4, 3]},
                {"name": "c", "shape": None},
            ],
            "inputs": [0, 1],
            "outputs": [2],
            "operators": [{"opcode": "CONCATENATION", "inputs": [0, 1],
                           "outputs": [2], "options": {"axis": 3}}],
        }
        g = convert_tflite_like(model)
        assert g.desc("c").shape == (1, 5, 4, 4)  # channel concat in NCHW

    def test_unknown_opcode(self):
        model = tflite_model()
        model["operators"][0]["opcode"] = "HASHTABLE_LOOKUP"
        with pytest.raises(ConversionError, match="HASHTABLE_LOOKUP"):
            convert_tflite_like(model)

    def test_missing_weight_data(self):
        model = tflite_model()
        model["tensors"][1]["data"] = None
        with pytest.raises(ConversionError, match="no constant data"):
            convert_tflite_like(model)

    def test_bad_padding(self):
        model = tflite_model()
        model["operators"][0]["options"]["padding"] = "CIRCULAR"
        with pytest.raises(ConversionError, match="padding"):
            convert_tflite_like(model)

    def test_three_frontends_agree(self):
        """The same conv expressed in ONNX-, Caffe- and TFLite-style models
        must produce identical numerics after conversion."""
        from repro.converter import convert_caffe_like, convert_onnx_like

        w_oihw = RNG.standard_normal((4, 3, 3, 3)).astype(np.float32) * 0.3
        x = RNG.standard_normal((1, 3, 8, 8)).astype(np.float32)

        onnx_g = convert_onnx_like({
            "inputs": [{"name": "x", "shape": [1, 3, 8, 8]}],
            "outputs": ["y"],
            "initializers": {"w": w_oihw},
            "nodes": [{"op_type": "Conv", "inputs": ["x", "w"], "outputs": ["y"],
                       "attrs": {"kernel_shape": [3, 3], "pads": [1, 1, 1, 1]}}],
        })
        caffe_g = convert_caffe_like({
            "inputs": [{"name": "x", "shape": [1, 3, 8, 8]}],
            "layers": [{"name": "conv", "type": "Convolution", "bottom": ["x"],
                        "top": ["y"], "kernel_size": 3, "pad": 1}],
            "blobs": {"conv": [w_oihw]},
        })
        tfl_g = convert_tflite_like({
            "tensors": [
                {"name": "x", "shape": [1, 8, 8, 3]},
                {"name": "w", "shape": [4, 3, 3, 3],
                 "data": np.ascontiguousarray(w_oihw.transpose(0, 2, 3, 1))},
                {"name": "y", "shape": None},
            ],
            "inputs": [0],
            "outputs": [2],
            "operators": [{"opcode": "CONV_2D", "inputs": [0, 1], "outputs": [2],
                           "options": {"padding": "SAME"}}],
        })
        a = execute_reference(onnx_g, {"x": x})["y"]
        b = execute_reference(caffe_g, {"x": x})["y"]
        c = execute_reference(tfl_g, {"x": x})["y"]
        np.testing.assert_allclose(a, b, atol=1e-5)
        np.testing.assert_allclose(a, c, atol=1e-5)
