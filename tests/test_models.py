"""Tests for the model zoo: shapes, op inventory, MUL counts, execution."""

import numpy as np
import pytest

from repro.core import Session, node_muls
from repro.ir import Op
from repro.models import MODEL_REGISTRY, build_model

RNG = np.random.default_rng(77)


def total_muls(graph) -> float:
    return sum(node_muls(n, graph) for n in graph.nodes)


#: vision models output ImageNet logits; text models are covered in
#: tests/test_sequence_models.py
VISION_MODELS = sorted(
    set(MODEL_REGISTRY) - {"tiny_transformer", "tiny_decoder", "lstm_classifier"}
)


class TestArchitectures:
    @pytest.mark.parametrize("name", VISION_MODELS)
    def test_builds_with_classifier_output(self, name):
        g = build_model(name)
        assert g.desc(g.outputs[0]).shape == (1, 1000)
        g.validate()

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="available"):
            build_model("alexnet")

    def test_published_mac_counts(self):
        """MUL totals must match the architectures' published MACs (+-10%)."""
        expected = {
            "mobilenet_v1": 569e6,
            "mobilenet_v2": 300e6,
            "squeezenet_v1.1": 352e6,
            "resnet18": 1.82e9,
            "resnet50": 4.1e9,
            "inception_v3": 5.7e9,
        }
        for name, macs in expected.items():
            got = total_muls(build_model(name))
            assert got == pytest.approx(macs, rel=0.10), name

    def test_squeezenet_v11_cheaper_than_v10(self):
        """The v1.1 redesign's whole point: ~2.4x fewer MACs."""
        v10 = total_muls(build_model("squeezenet_v1.0"))
        v11 = total_muls(build_model("squeezenet_v1.1"))
        assert v10 / v11 > 2.0

    def test_inception_has_asymmetric_convs(self):
        """Figure 8's premise: Inception-v3 contains 1x7 and 7x1 kernels."""
        g = build_model("inception_v3")
        kernels = {
            tuple(n.attrs["kernel"]) for n in g.nodes if n.op_type == Op.CONV2D
        }
        assert (1, 7) in kernels and (7, 1) in kernels

    def test_mobilenet_is_mostly_depthwise_separable(self):
        g = build_model("mobilenet_v1")
        hist = g.op_histogram()
        assert hist[Op.DEPTHWISE_CONV2D] == 13
        assert hist[Op.CONV2D] == 14  # stem + 13 pointwise

    def test_mobilenet_v2_has_residuals(self):
        g = build_model("mobilenet_v2")
        assert g.op_histogram().get(Op.ADD, 0) == 10  # v2's residual count

    def test_resnet_shortcut_structure(self):
        g = build_model("resnet18")
        hist = g.op_histogram()
        assert hist[Op.ADD] == 8  # 2 blocks x 4 stages
        assert hist[Op.CONV2D] == 20  # 16 block convs + 3 projections + stem

    def test_width_multiplier_scales_cost(self):
        full = total_muls(build_model("mobilenet_v1"))
        half = total_muls(build_model("mobilenet_v1", width=0.5))
        assert half < full * 0.4  # roughly quadratic in width

    def test_input_size_scales_cost(self):
        full = total_muls(build_model("mobilenet_v1"))
        small = total_muls(build_model("mobilenet_v1", input_size=128))
        assert small < full * 0.45  # quadratic in resolution

    def test_seeded_builds_reproducible(self):
        a = build_model("squeezenet_v1.1", seed=3)
        b = build_model("squeezenet_v1.1", seed=3)
        for name in a.constants:
            np.testing.assert_array_equal(a.constants[name], b.constants[name])


class TestExecution:
    """End-to-end runs on shrunken variants (full-size nets are bench-only)."""

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("mobilenet_v1", {"input_size": 64, "width": 0.25}),
            ("mobilenet_v2", {"input_size": 64, "width": 0.35}),
            ("squeezenet_v1.1", {"input_size": 96}),
            ("resnet18", {"input_size": 64}),
        ],
    )
    def test_small_variant_inference(self, name, kwargs):
        g = build_model(name, classes=10, **kwargs)
        session = Session(g)
        size = kwargs.get("input_size", 224)
        out = session.run({"data": RNG.standard_normal((1, 3, size, size)).astype(np.float32)})
        probs = list(out.values())[0]
        assert probs.shape == (1, 10)
        assert probs.sum() == pytest.approx(1.0, abs=1e-4)
        assert (probs >= 0).all()

    def test_inception_tiny_inference(self):
        g = build_model("inception_v3", input_size=147, classes=10)
        session = Session(g)
        out = session.run(
            {"data": RNG.standard_normal((1, 3, 147, 147)).astype(np.float32)}
        )
        probs = list(out.values())[0]
        assert probs.sum() == pytest.approx(1.0, abs=1e-4)

    def test_scheme_mix_on_real_network(self):
        """MNN's premise: one network wants several conv schemes at once."""
        g = build_model("squeezenet_v1.1", input_size=128, classes=10)
        session = Session(g)
        mix = session.scheme_summary()
        assert mix.get("gemm1x1", 0) > 0     # fire squeeze/expand 1x1s
        assert mix.get("winograd", 0) > 0    # 3x3 expands
