"""Tests for the offline converter: frontends, optimizer passes, quantization."""

import numpy as np
import pytest

from repro.converter import (
    ConversionError,
    FuseConvActivation,
    FuseConvBatchNorm,
    PassManager,
    RemoveIdentity,
    ReplaceOps,
    convert_caffe_like,
    convert_onnx_like,
    optimize,
    quantize_model,
    weight_bytes,
)
from repro.core import Session
from repro.core.reference import execute_reference
from repro.ir import GraphBuilder, GraphError, Op

RNG = np.random.default_rng(31)


def onnx_model():
    w1 = RNG.standard_normal((8, 3, 3, 3)).astype(np.float32) * 0.2
    b1 = RNG.standard_normal(8).astype(np.float32) * 0.05
    wdw = RNG.standard_normal((8, 1, 3, 3)).astype(np.float32) * 0.2
    w2 = RNG.standard_normal((10, 8 * 8 * 8)).astype(np.float32) * 0.05
    b2 = np.zeros(10, np.float32)
    return {
        "name": "toy",
        "inputs": [{"name": "x", "shape": [1, 3, 16, 16]}],
        "outputs": ["prob"],
        "initializers": {"w1": w1, "b1": b1, "wdw": wdw, "w2": w2, "b2": b2},
        "nodes": [
            {"op_type": "Conv", "inputs": ["x", "w1", "b1"], "outputs": ["c1"],
             "attrs": {"kernel_shape": [3, 3], "pads": [1, 1, 1, 1]}},
            {"op_type": "Relu", "inputs": ["c1"], "outputs": ["r1"]},
            {"op_type": "Conv", "inputs": ["r1", "wdw"], "outputs": ["dw"],
             "attrs": {"kernel_shape": [3, 3], "pads": [1, 1, 1, 1], "group": 8}},
            {"op_type": "MaxPool", "inputs": ["dw"], "outputs": ["p1"],
             "attrs": {"kernel_shape": [2, 2], "strides": [2, 2]}},
            {"op_type": "Flatten", "inputs": ["p1"], "outputs": ["flat"]},
            {"op_type": "Gemm", "inputs": ["flat", "w2", "b2"], "outputs": ["fc"]},
            {"op_type": "Softmax", "inputs": ["fc"], "outputs": ["prob"]},
        ],
    }


class TestOnnxFrontend:
    def test_converts_and_runs(self):
        g = convert_onnx_like(onnx_model())
        assert g.desc("prob").shape == (1, 10)
        out = execute_reference(g, {"x": RNG.standard_normal((1, 3, 16, 16)).astype(np.float32)})
        assert out["prob"].sum() == pytest.approx(1.0, abs=1e-5)

    def test_depthwise_detected(self):
        g = convert_onnx_like(onnx_model())
        ops = [n.op_type for n in g.nodes]
        assert Op.DEPTHWISE_CONV2D in ops
        assert ops.count(Op.CONV2D) == 1

    def test_onnx_pads_reordered(self):
        g = convert_onnx_like(onnx_model())
        conv = next(n for n in g.nodes if n.op_type == Op.CONV2D)
        assert conv.attrs["pad"] == (1, 1, 1, 1)

    def test_clip_maps_to_relu6(self):
        model = {
            "inputs": [{"name": "x", "shape": [1, 2, 4, 4]}],
            "outputs": ["y"],
            "initializers": {},
            "nodes": [{"op_type": "Clip", "inputs": ["x"], "outputs": ["y"],
                       "attrs": {"min": 0.0, "max": 6.0}}],
        }
        g = convert_onnx_like(model)
        assert g.nodes[0].op_type == Op.RELU6

    def test_weird_clip_rejected(self):
        model = {
            "inputs": [{"name": "x", "shape": [1, 2, 4, 4]}],
            "outputs": ["y"],
            "initializers": {},
            "nodes": [{"op_type": "Clip", "inputs": ["x"], "outputs": ["y"],
                       "attrs": {"min": -1.0, "max": 3.0}}],
        }
        with pytest.raises(ConversionError, match="ReLU6"):
            convert_onnx_like(model)

    def test_unknown_op_rejected(self):
        model = {
            "inputs": [{"name": "x", "shape": [1, 2]}],
            "outputs": ["y"],
            "initializers": {},
            "nodes": [{"op_type": "Einsum", "inputs": ["x"], "outputs": ["y"]}],
        }
        with pytest.raises(ConversionError, match="Einsum"):
            convert_onnx_like(model)

    def test_reshape_via_constant_input(self):
        model = {
            "inputs": [{"name": "x", "shape": [1, 12]}],
            "outputs": ["y"],
            "initializers": {"shape": np.array([1, 3, 2, 2], np.int32)},
            "nodes": [{"op_type": "Reshape", "inputs": ["x", "shape"], "outputs": ["y"]}],
        }
        g = convert_onnx_like(model)
        assert g.desc("y").shape == (1, 3, 2, 2)


def caffe_model():
    w = RNG.standard_normal((6, 3, 3, 3)).astype(np.float32) * 0.2
    b = np.zeros(6, np.float32)
    mean = RNG.standard_normal(6).astype(np.float32) * 0.1
    var = np.abs(RNG.standard_normal(6).astype(np.float32)) + 0.8
    gamma = np.abs(RNG.standard_normal(6).astype(np.float32)) + 0.5
    beta = RNG.standard_normal(6).astype(np.float32) * 0.1
    fc_w = RNG.standard_normal((4, 6)).astype(np.float32) * 0.1
    return {
        "name": "caffenet",
        "inputs": [{"name": "data", "shape": [1, 3, 12, 12]}],
        "layers": [
            {"name": "conv1", "type": "Convolution", "bottom": ["data"], "top": ["conv1"],
             "kernel_size": 3, "pad": 1},
            {"name": "bn1", "type": "BatchNorm", "bottom": ["conv1"], "top": ["bn1"]},
            {"name": "scale1", "type": "Scale", "bottom": ["bn1"], "top": ["scale1"]},
            {"name": "relu1", "type": "ReLU", "bottom": ["scale1"], "top": ["relu1"]},
            {"name": "pool_g", "type": "Pooling", "bottom": ["relu1"], "top": ["pool_g"],
             "pool": "AVE", "global_pooling": True},
            {"name": "fc", "type": "InnerProduct", "bottom": ["pool_g"], "top": ["fc"]},
            {"name": "prob", "type": "Softmax", "bottom": ["fc"], "top": ["prob"]},
        ],
        "blobs": {
            "conv1": [w, b],
            "bn1": [mean, var, np.float32(1.0)],
            "scale1": [gamma, beta],
            "fc": [fc_w],
        },
    }


class TestCaffeFrontend:
    def test_converts_and_runs(self):
        g = convert_caffe_like(caffe_model())
        assert g.outputs == ["prob"]
        out = execute_reference(g, {"data": RNG.standard_normal((1, 3, 12, 12)).astype(np.float32)})
        assert out["prob"].shape == (1, 4)
        assert out["prob"].sum() == pytest.approx(1.0, abs=1e-5)

    def test_outputs_inferred_from_dangling_tops(self):
        g = convert_caffe_like(caffe_model())
        assert g.outputs == ["prob"]

    def test_missing_blob_rejected(self):
        model = caffe_model()
        del model["blobs"]["conv1"]
        with pytest.raises(ConversionError, match="conv1"):
            convert_caffe_like(model)

    def test_unknown_layer_rejected(self):
        model = caffe_model()
        model["layers"].append({"name": "lstm", "type": "LSTM",
                                "bottom": ["prob"], "top": ["h"]})
        with pytest.raises(ConversionError, match="LSTM"):
            convert_caffe_like(model)

    def test_eltwise_ops(self):
        model = {
            "inputs": [{"name": "a", "shape": [1, 2, 4, 4]}],
            "layers": [
                {"name": "sum", "type": "Eltwise", "bottom": ["a", "a"], "top": ["s"],
                 "operation": "SUM"},
                {"name": "max", "type": "Eltwise", "bottom": ["s", "a"], "top": ["m"],
                 "operation": "MAX"},
            ],
            "blobs": {},
        }
        g = convert_caffe_like(model)
        out = execute_reference(g, {"a": np.ones((1, 2, 4, 4), np.float32)})
        np.testing.assert_array_equal(out["m"], np.full((1, 2, 4, 4), 2.0))


def graph_with_bn_relu():
    b = GraphBuilder("f", seed=9)
    x = b.input("in", (1, 3, 12, 12))
    x = b.conv(x, oc=8, kernel=3)
    x = b.batch_norm(x)
    x = b.relu(x)
    x = b.dropout(x)
    x = b.conv(x, oc=8, kernel=3)
    x = b.batch_norm(x)
    x = b.relu6(x)
    b.output(x)
    return b.finish()


class TestOptimizerPasses:
    def test_fusion_preserves_numerics(self):
        g = graph_with_bn_relu()
        feeds = {"in": RNG.standard_normal((1, 3, 12, 12)).astype(np.float32)}
        before = execute_reference(g, feeds)[g.outputs[0]]
        optimize(g)
        after = execute_reference(g, feeds)[g.outputs[0]]
        np.testing.assert_allclose(before, after, atol=1e-4)

    def test_fusion_shrinks_graph(self):
        g = graph_with_bn_relu()
        n_before = len(g.nodes)
        optimize(g)
        ops = [n.op_type for n in g.nodes]
        assert Op.BATCH_NORM not in ops
        assert Op.RELU not in ops and Op.RELU6 not in ops
        assert Op.DROPOUT not in ops
        assert len(g.nodes) == 2  # just the two fused convs
        assert len(g.nodes) < n_before
        # fused activations recorded
        assert sorted(n.attrs["activation"] for n in g.nodes) == ["relu", "relu6"]

    def test_bn_not_fused_across_fanout(self):
        b = GraphBuilder("fanout", seed=0)
        x = b.input("in", (1, 4, 8, 8))
        c = b.conv(x, oc=4, kernel=3)
        bn = b.batch_norm(c)
        other = b.relu(c)  # second consumer of the conv output
        b.output(b.add(bn, other))
        g = b.finish()
        optimize(g)
        assert Op.BATCH_NORM in [n.op_type for n in g.nodes]

    def test_fold_constants(self):
        b = GraphBuilder("const", seed=0)
        x = b.input("in", (1, 4))
        c1 = b.constant(np.ones((1, 4), np.float32))
        c2 = b.constant(np.full((1, 4), 2.0, np.float32))
        folded = b.add(c1, c2)  # fully constant
        b.output(b.add(x, folded))
        g = b.finish()
        optimize(g)
        assert len(g.nodes) == 1
        assert folded in g.constants
        np.testing.assert_array_equal(g.constants[folded], np.full((1, 4), 3.0))

    def test_replace_reduce_mean_with_gap(self):
        b = GraphBuilder("rm", seed=0)
        x = b.input("in", (1, 4, 8, 8))
        y = b._unary(Op.REDUCE_MEAN, x, {"axes": (2, 3), "keepdims": True})
        b.output(y)
        g = b.finish()
        ReplaceOps().run(g)
        assert g.nodes[0].op_type == Op.GLOBAL_AVG_POOL

    def test_replace_full_avgpool_with_gap(self):
        b = GraphBuilder("ap", seed=0)
        x = b.input("in", (1, 4, 7, 7))
        y = b.avg_pool(x, 7, pad_mode="explicit")
        b.output(y)
        g = b.finish()
        ReplaceOps().run(g)
        assert g.nodes[0].op_type == Op.GLOBAL_AVG_POOL

    def test_optimized_graph_runs_in_session(self):
        g = graph_with_bn_relu()
        optimize(g)
        session = Session(g)
        out = session.run({"in": RNG.standard_normal((1, 3, 12, 12)).astype(np.float32)})
        assert list(out.values())[0].shape == (1, 8, 12, 12)


class TestQuantization:
    def _model(self):
        b = GraphBuilder("q", seed=4)
        x = b.input("in", (1, 3, 16, 16))
        x = b.conv(x, oc=16, kernel=3, activation="relu")
        x = b.conv(x, oc=16, kernel=3, activation="relu")
        x = b.fc(b.global_avg_pool(x), units=5)
        b.output(b.softmax(x))
        return b.finish()

    def _feeds(self, n=4):
        return [
            {"in": RNG.standard_normal((1, 3, 16, 16)).astype(np.float32)}
            for _ in range(n)
        ]

    def test_quantized_weights_are_int8(self):
        g = self._model()
        q = quantize_model(g, self._feeds())
        convs = [n for n in q.nodes if n.op_type == Op.CONV2D]
        assert convs
        for conv in convs:
            assert q.constants[conv.inputs[1]].dtype == np.int8
            assert conv.attrs["input_scale"] > 0
            assert len(conv.attrs["weight_scales"]) == q.constants[conv.inputs[1]].shape[0]

    def test_model_size_shrinks(self):
        g = self._model()
        q = quantize_model(g, self._feeds())
        # conv weights dominate this model; total weight bytes must drop a lot
        assert weight_bytes(q) < weight_bytes(g) * 0.65

    def test_outputs_close_to_float(self):
        g = self._model()
        q = quantize_model(g, self._feeds())
        feeds = self._feeds(1)[0]
        ref = execute_reference(g, feeds)[g.outputs[0]]
        got = execute_reference(q, feeds)[q.outputs[0]]
        assert np.abs(ref - got).max() < 0.05  # softmax probabilities

    def test_original_untouched(self):
        g = self._model()
        quantize_model(g, self._feeds())
        for value in g.constants.values():
            assert value.dtype != np.int8

    def test_runs_in_session(self):
        q = quantize_model(self._model(), self._feeds())
        session = Session(q)
        out = list(session.run(self._feeds(1)[0]).values())[0]
        assert out.sum() == pytest.approx(1.0, abs=1e-4)

    def test_no_calibration_data_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            quantize_model(self._model(), [])

    def test_no_convs_rejected(self):
        b = GraphBuilder("noconv", seed=0)
        x = b.input("in", (1, 4))
        b.output(b.relu(x))
        with pytest.raises(GraphError, match="no quantizable"):
            quantize_model(b.finish(), [{"in": np.ones((1, 4), np.float32)}])

    def test_fc_quantized_too(self):
        g = self._model()
        q = quantize_model(g, self._feeds())
        fc = next(n for n in q.nodes if n.op_type == Op.FULLY_CONNECTED)
        assert q.constants[fc.inputs[1]].dtype == np.int8
        assert len(fc.attrs["weight_scales"]) == fc.attrs["units"]

    def test_fc_quantization_opt_out(self):
        g = self._model()
        q = quantize_model(g, self._feeds(), quantize_fc=False)
        fc = next(n for n in q.nodes if n.op_type == Op.FULLY_CONNECTED)
        assert q.constants[fc.inputs[1]].dtype == np.float32

    def test_fc_quantized_output_close(self):
        g = self._model()
        q = quantize_model(g, self._feeds())
        feeds = self._feeds(1)[0]
        ref = execute_reference(g, feeds)[g.outputs[0]]
        got = execute_reference(q, feeds)[q.outputs[0]]
        assert np.abs(ref - got).max() < 0.06

    def test_quantized_model_serializes(self):
        from repro.ir import dumps, loads
        q = quantize_model(self._model(), self._feeds())
        q2 = loads(dumps(q))
        feeds = self._feeds(1)[0]
        a = execute_reference(q, feeds)[q.outputs[0]]
        b2 = execute_reference(q2, feeds)[q2.outputs[0]]
        np.testing.assert_allclose(a, b2, atol=1e-6)
