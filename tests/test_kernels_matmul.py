"""Tests for the tiled GEMM micro-kernel and Strassen multiplication."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    GemmStats,
    matmul,
    strassen_matmul,
    strassen_should_recurse,
    tiled_matmul,
)

RNG = np.random.default_rng(42)


class TestTiledMatmul:
    def test_matches_numpy_exact_tiles(self):
        a = RNG.standard_normal((128, 64))
        b = RNG.standard_normal((64, 96))
        np.testing.assert_allclose(tiled_matmul(a, b, tile=32), a @ b, atol=1e-10)

    def test_matches_numpy_ragged_tiles(self):
        a = RNG.standard_normal((130, 70))
        b = RNG.standard_normal((70, 97))
        np.testing.assert_allclose(tiled_matmul(a, b, tile=48), a @ b, atol=1e-10)

    def test_bad_shapes(self):
        with pytest.raises(ValueError, match="shapes"):
            tiled_matmul(np.zeros((3, 4)), np.zeros((5, 6)))
        with pytest.raises(ValueError, match="shapes"):
            tiled_matmul(np.zeros(4), np.zeros((4, 2)))

    def test_stats_count_all_elements(self):
        a = RNG.standard_normal((64, 64))
        b = RNG.standard_normal((64, 64))
        stats = GemmStats()
        tiled_matmul(a, b, tile=32, stats=stats)
        assert stats.mul_elements == 64 * 64 * 64
        assert stats.base_multiplies == 8  # 2x2 output tiles x 2 k-tiles
        assert stats.add_elements == 0

    @given(
        n=st.integers(1, 40),
        k=st.integers(1, 40),
        m=st.integers(1, 40),
        tile=st.integers(1, 17),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_any_shape_any_tile(self, n, k, m, tile):
        a = RNG.standard_normal((n, k))
        b = RNG.standard_normal((k, m))
        np.testing.assert_allclose(tiled_matmul(a, b, tile=tile), a @ b, atol=1e-9)


class TestRecursionGate:
    def test_eq9_large_sizes_recurse(self):
        assert strassen_should_recurse(1024, 1024, 1024)
        assert strassen_should_recurse(512, 512, 512)

    def test_eq9_small_sizes_stop(self):
        assert not strassen_should_recurse(16, 16, 16)
        # Eq. 9 is (barely) still true at 32^3: 4096 saved MULs vs 3840 adds.
        # The implementation's micro-kernel floor is what stops recursion there.
        assert strassen_should_recurse(32, 32, 32)

    def test_eq9_boundary_matches_formula(self):
        for n, k, m in [(64, 64, 64), (128, 64, 32), (100, 700, 30)]:
            saved = n * k * m - 7 * (n // 2) * (k // 2) * (m // 2)
            extra = 4 * (m // 2) * (k // 2) + 4 * (n // 2) * (k // 2) + 7 * (m // 2) * (n // 2)
            assert strassen_should_recurse(n, k, m) == (saved > extra)

    def test_thin_matrices_do_not_recurse(self):
        # mnk/8 savings vanish when one dim is tiny
        assert not strassen_should_recurse(4, 2048, 4)


class TestStrassen:
    def test_matches_numpy_square(self):
        a = RNG.standard_normal((256, 256))
        b = RNG.standard_normal((256, 256))
        np.testing.assert_allclose(strassen_matmul(a, b, tile=32), a @ b, atol=1e-8)

    def test_matches_numpy_rectangular(self):
        a = RNG.standard_normal((300, 500))
        b = RNG.standard_normal((500, 260))
        np.testing.assert_allclose(strassen_matmul(a, b, tile=32), a @ b, atol=1e-8)

    def test_odd_sizes_padded_correctly(self):
        a = RNG.standard_normal((257, 255))
        b = RNG.standard_normal((255, 259))
        np.testing.assert_allclose(strassen_matmul(a, b, tile=16), a @ b, atol=1e-8)

    def test_small_problem_falls_back_to_tiled(self):
        a = RNG.standard_normal((32, 32))
        b = RNG.standard_normal((32, 32))
        stats = GemmStats()
        strassen_matmul(a, b, tile=64, stats=stats)
        assert stats.max_depth == 0
        assert stats.add_elements == 0

    def test_strassen_saves_multiplications(self):
        """The paper's core claim: fewer scalar MULs than direct GEMM."""
        size = 512
        a = RNG.standard_normal((size, size))
        b = RNG.standard_normal((size, size))
        direct = GemmStats()
        tiled_matmul(a, b, tile=64, stats=direct)
        fast = GemmStats()
        strassen_matmul(a, b, tile=64, stats=fast)
        assert fast.mul_elements < direct.mul_elements
        # one recursion level saves 1/8 of MULs; deeper saves more
        assert fast.mul_elements <= direct.mul_elements * (7 / 8) ** fast.max_depth * 1.001
        assert fast.max_depth >= 2

    def test_depth_grows_with_size(self):
        depths = []
        for size in (128, 256, 512):
            stats = GemmStats()
            a = RNG.standard_normal((size, size))
            strassen_matmul(a, a, tile=32, stats=stats)
            depths.append(stats.max_depth)
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]

    @given(
        n=st.integers(1, 150),
        k=st.integers(1, 150),
        m=st.integers(1, 150),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, n, k, m):
        a = RNG.standard_normal((n, k))
        b = RNG.standard_normal((k, m))
        np.testing.assert_allclose(strassen_matmul(a, b, tile=16), a @ b, atol=1e-8)

    def test_dispatch_helper(self):
        a = RNG.standard_normal((64, 64))
        b = RNG.standard_normal((64, 64))
        np.testing.assert_allclose(matmul(a, b, use_strassen=True), a @ b, atol=1e-9)
        np.testing.assert_allclose(matmul(a, b, use_strassen=False), a @ b, atol=1e-9)
