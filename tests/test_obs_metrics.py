"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_metrics, set_metrics

RNG = np.random.default_rng(42)


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_thread_safe(self):
        c = Counter("c")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.value == 3.5
        g.set(1.0)
        assert g.value == 1.0

    def test_track_max(self):
        g = Gauge("g")
        for v in (2, 9, 4):
            g.track_max(v)
        assert g.value == 9


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 4.0

    def test_percentiles_match_numpy(self):
        """The interpolation must agree exactly with np.percentile's default."""
        h = Histogram("h")
        values = RNG.standard_normal(501) * 10.0
        for v in values:
            h.observe(float(v))
        for q in (0, 10, 25, 50, 75, 90, 99, 99.9, 100):
            assert h.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12, abs=1e-12
            ), q

    def test_percentile_bounds(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.percentile(50) == 0.0
        s = h.summary()
        assert s == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_window_bounds_raw_values_not_aggregates(self):
        h = Histogram("h", window=16)
        for i in range(100):
            h.observe(float(i))
        assert len(h.values) == 16            # window capped
        assert h.values == [float(i) for i in range(84, 100)]
        assert h.count == 100                 # aggregates exact
        assert h.sum == pytest.approx(sum(range(100)))
        assert h.summary()["min"] == 0.0      # min survives eviction


_FINITE = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestHistogramProperties:
    """Property tests: the percentile interpolation must agree with
    np.percentile (default linear interpolation) whenever the window
    holds every observation, and degenerate windows must stay honest —
    exact aggregates over all observations, percentiles over the tail.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(_FINITE, min_size=1, max_size=200),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_matches_numpy_when_window_covers_count(self, values, q):
        h = Histogram("h", window=len(values))
        for v in values:
            h.observe(v)
        expected = float(np.percentile(values, q))
        assert h.percentile(q) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(_FINITE, min_size=2, max_size=200),
        window=st.integers(min_value=1, max_value=50),
    )
    def test_overflowing_window_keeps_aggregates_exact(self, values, window):
        h = Histogram("h", window=window)
        for v in values:
            h.observe(v)
        # Aggregates never forget, regardless of window size.
        assert h.count == len(values)
        assert h.sum == pytest.approx(sum(values), rel=1e-9, abs=1e-9)
        assert h.summary()["min"] == min(values)
        assert h.summary()["max"] == max(values)
        # Percentiles cover exactly the most recent `window` observations.
        tail = values[-window:]
        assert h.values == tail
        for q in (0, 50, 100):
            assert h.percentile(q) == pytest.approx(
                float(np.percentile(tail, q)), rel=1e-9, abs=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(value=_FINITE, q=st.floats(min_value=0.0, max_value=100.0))
    def test_single_sample_every_percentile_is_that_sample(self, value, q):
        h = Histogram("h")
        h.observe(value)
        assert h.percentile(q) == pytest.approx(value)

    def test_window_of_one_tracks_only_the_last_value(self):
        h = Histogram("h", window=1)
        for v in (5.0, 1.0, 9.0):
            h.observe(v)
        assert h.percentile(50) == 9.0 == h.percentile(0) == h.percentile(100)
        assert h.count == 3 and h.summary()["min"] == 1.0


class TestMetricsRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.gauge("alpha")
        assert reg.names() == ["alpha", "zeta"]

    def test_snapshot_shape_and_stability(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.gauge("idle").set(2)
        reg.histogram("lat_ms").observe(1.5)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"requests": 3}
        assert snap["gauges"] == {"idle": 2}
        assert set(snap["histograms"]["lat_ms"]) == {
            "count", "sum", "mean", "min", "max", "p50", "p90", "p99"
        }
        # identical state -> identical serialization (stable for BENCH_*.json)
        a = json.dumps(reg.snapshot(), sort_keys=True)
        b = json.dumps(reg.snapshot(), sort_keys=True)
        assert a == b
        assert json.loads(a) == snap  # round-trips through JSON untouched

    def test_describe_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.histogram("ms").observe(2.0)
        text = reg.describe()
        assert "hits" in text and "ms" in text and "p99" in text

    def test_describe_empty(self):
        assert MetricsRegistry().describe() == "(no metrics recorded)"

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.clear()
        assert reg.names() == []


class TestGlobalRegistry:
    def test_set_metrics_returns_previous(self):
        mine = MetricsRegistry()
        previous = set_metrics(mine)
        try:
            assert get_metrics() is mine
            get_metrics().counter("probe").inc()
            assert mine.counter("probe").value == 1
        finally:
            set_metrics(previous)
        assert get_metrics() is previous

    def test_session_records_to_global_registry(self):
        """A default-configured session lands prepare/run metrics globally."""
        from repro.core import Session
        from repro.ir import GraphBuilder

        b = GraphBuilder("tiny", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        x = b.conv(x, oc=4, kernel=3)
        b.output(x)
        graph = b.finish()

        mine = MetricsRegistry()
        previous = set_metrics(mine)
        try:
            session = Session(graph)
            session.run({"x": np.zeros((1, 4, 8, 8), np.float32)})
        finally:
            set_metrics(previous)
        assert mine.counter("session.prepares").value == 1
        assert mine.counter("session.runs").value == 1
        assert mine.histogram("session.prepare_ms").count == 1
        assert mine.histogram("session.run_ms").count == 1


class TestBenchResultHelpers:
    def test_bench_record_schema(self):
        from repro.bench import TimingResult, bench_record

        record = bench_record(
            "demo",
            config={"threads": 4},
            timing=TimingResult([1.0, 2.0, 3.0]),
            metrics=MetricsRegistry().snapshot(),
            note="extra",
        )
        assert record["name"] == "demo"
        assert record["config"] == {"threads": 4}
        assert record["timing"]["repeats"] == 3
        assert record["timing"]["median_ms"] == 2.0
        assert set(record["metrics"]) == {"counters", "gauges", "histograms"}
        assert record["note"] == "extra"
        json.dumps(record)  # fully serializable

    def test_write_bench_result_accumulates(self, tmp_path):
        from repro.bench import bench_record, write_bench_result

        out = str(tmp_path)
        path1 = write_bench_result(bench_record("t1", config={"i": 1}), out)
        path2 = write_bench_result(bench_record("t1", config={"i": 2}), out)
        assert path1 == path2
        with open(path1) as fh:
            history = json.load(fh)
        assert [r["config"]["i"] for r in history] == [1, 2]

    def test_write_bench_result_tolerates_corrupt_file(self, tmp_path):
        from repro.bench import bench_record, write_bench_result

        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        write_bench_result(bench_record("bad"), str(tmp_path))
        with open(path) as fh:
            history = json.load(fh)
        assert len(history) == 1 and history[0]["name"] == "bad"
