"""Converter-time int8 weight quantization (:mod:`repro.quant.convert`).

The contracts under test: per-output-channel symmetric scales stamped on
every consumer, serialization round-trip by construction, the original
graph untouched, ineligible weights left in float, and a quantization
fingerprint that separates the int8 variant from its fp twin everywhere
it matters (including the pre-inference cache key).
"""

import numpy as np
import pytest

from repro.analysis import Severity, lint_graph
from repro.ir import DataType, GraphBuilder, GraphError, dumps, loads
from repro.ir.ops import Op
from repro.models.text import tiny_decoder
from repro.quant import max_abs_error, quantization_fingerprint, quantize_graph

pytestmark = pytest.mark.quant

RNG = np.random.default_rng(42)


def matmul_graph(transpose_b=False, shared_with_relu=False, k=8, m=6):
    b = GraphBuilder("mm", seed=0)
    x = b.input("x", (2, k))
    w = b.constant(
        RNG.standard_normal((m, k) if transpose_b else (k, m)).astype(np.float32),
        name="w",
    )
    y = b.matmul(x, w, transpose_b=transpose_b)
    if shared_with_relu:
        # A second, non-GEMM consumer of the weights: disqualifying.
        b.graph.add_node(Op.RELU, [w], ["w_relu"])
        b.output(y, "w_relu")
    else:
        b.output(y)
    return b.finish()


class TestQuantizeGraph:
    def test_matmul_weights_become_int8_with_per_channel_scales(self):
        graph = matmul_graph()
        q = quantize_graph(graph)
        w = q.constants["w"]
        assert w.dtype == np.int8
        assert q.tensor_descs["w"].dtype == DataType.INT8
        (node,) = [n for n in q.nodes if n.attrs.get("weight_scales")]
        scales = node.attrs["weight_scales"]
        assert len(scales) == 6  # one per output channel
        # symmetric: scale == max_abs / 127 per column
        expect = np.abs(graph.constants["w"]).max(axis=0) / 127.0
        np.testing.assert_allclose(scales, expect, rtol=1e-6)

    def test_transpose_b_uses_the_other_axis(self):
        graph = matmul_graph(transpose_b=True)
        q = quantize_graph(graph)
        (node,) = [n for n in q.nodes if n.attrs.get("weight_scales")]
        assert len(node.attrs["weight_scales"]) == 6
        expect = np.abs(graph.constants["w"]).max(axis=1) / 127.0
        np.testing.assert_allclose(node.attrs["weight_scales"], expect, rtol=1e-6)

    def test_original_graph_is_untouched(self):
        graph = matmul_graph()
        before = graph.constants["w"].copy()
        quantize_graph(graph)
        assert graph.constants["w"].dtype == np.float32
        np.testing.assert_array_equal(graph.constants["w"], before)
        assert all(not n.attrs.get("weight_scales") for n in graph.nodes)

    def test_shared_non_gemm_consumer_stays_float(self):
        q = quantize_graph_or_none(matmul_graph(shared_with_relu=True))
        if q is not None:  # the decoder path may still quantize others
            assert q.constants["w"].dtype == np.float32

    def test_nothing_to_quantize_raises(self):
        b = GraphBuilder("plain", seed=0)
        x = b.input("x", (1, 4))
        b.output(b.relu(x))
        with pytest.raises(GraphError):
            quantize_graph(b.finish())

    def test_survives_serialization_round_trip(self):
        q = quantize_graph(matmul_graph())
        back = loads(dumps(q))
        assert back.constants["w"].dtype == np.int8
        np.testing.assert_array_equal(back.constants["w"], q.constants["w"])
        (node,) = [n for n in back.nodes if n.attrs.get("weight_scales")]
        (orig,) = [n for n in q.nodes if n.attrs.get("weight_scales")]
        assert node.attrs["weight_scales"] == orig.attrs["weight_scales"]

    def test_quantized_decoder_is_q_rule_clean(self):
        graph = tiny_decoder(mode="full", seq_len=8, batch=1, vocab=32,
                             max_seq=8, d_model=16, heads=2, layers=1, seed=3)
        q = quantize_graph(graph)
        diags = [d for d in lint_graph(q) if d.rule.startswith("Q")]
        assert diags == []

    def test_accuracy_contract_on_decoder_logits(self):
        graph = tiny_decoder(mode="full", seq_len=16, batch=1, vocab=64,
                             max_seq=16, d_model=32, heads=2, layers=2, seed=7)
        q = quantize_graph(graph)
        feeds = {
            "tokens": RNG.integers(0, 64, size=(1, 16)).astype(np.int32),
            "positions": np.arange(16, dtype=np.int32).reshape(1, 16),
        }
        err = max_abs_error(graph, q, feeds, outputs=["logits"])
        assert err <= 0.15


def quantize_graph_or_none(graph):
    try:
        return quantize_graph(graph)
    except GraphError:
        return None


class TestFingerprint:
    def test_fp_and_quantized_fingerprints_differ(self):
        graph = matmul_graph()
        q = quantize_graph(graph)
        assert quantization_fingerprint(graph) != quantization_fingerprint(q)

    def test_fingerprint_is_deterministic(self):
        q = quantize_graph(matmul_graph())
        assert quantization_fingerprint(q) == quantization_fingerprint(
            loads(dumps(q))
        )

    def test_pre_inference_cache_keys_never_collide(self):
        # The satellite fix: graph_signature alone is dtype-blind for
        # constants, so without the quant fingerprint a cached fp plan
        # could be replayed against int8 tensors.
        from repro.core.session import SessionConfig
        from repro.serving.cache import PreInferenceCache

        graph = tiny_decoder(mode="full", seq_len=8, batch=1, vocab=32,
                             max_seq=8, d_model=16, heads=2, layers=1, seed=3)
        q = quantize_graph(graph)
        cache = PreInferenceCache("/tmp/unused-quant-key-test")
        config = SessionConfig()
        assert cache.key(graph, config) != cache.key(q, config)

    def test_scale_corruption_changes_fingerprint(self):
        q = quantize_graph(matmul_graph())
        fp_before = quantization_fingerprint(q)
        (node,) = [n for n in q.nodes if n.attrs.get("weight_scales")]
        node.attrs["weight_scales"] = [s * 2 for s in node.attrs["weight_scales"]]
        assert quantization_fingerprint(q) != fp_before


class TestLintRules:
    def test_q001_flags_nonfinite_and_nonpositive_scales(self):
        q = quantize_graph(matmul_graph())
        (node,) = [n for n in q.nodes if n.attrs.get("weight_scales")]
        node.attrs["weight_scales"] = [float("inf"), -1.0, 0.0, 1.0, 1.0, 1.0]
        diags = [d for d in lint_graph(q) if d.rule == "Q001"]
        assert len(diags) == 3
        assert all(d.severity is Severity.ERROR for d in diags)

    def test_q003_flags_missing_and_mismatched_scales(self):
        q = quantize_graph(matmul_graph())
        (node,) = [n for n in q.nodes if n.attrs.get("weight_scales")]
        node.attrs["weight_scales"] = node.attrs["weight_scales"][:-1]
        assert any(d.rule == "Q003" for d in lint_graph(q))
        node.attrs["weight_scales"] = None
        assert any(d.rule == "Q003" for d in lint_graph(q))

    def test_q002_zero_point_rules(self):
        b = GraphBuilder("zp", seed=0)
        x = b.input("x", (1, 4))
        b.graph.add_node(Op.QUANTIZE, [x], ["xq"],
                         {"scale": 0.1, "zero_point": 300})
        b.graph.add_node(Op.DEQUANTIZE, ["xq"], ["y"],
                         {"scale": 0.1, "zero_point": 1})
        b.output("y")
        diags = [d for d in lint_graph(b.finish()) if d.rule == "Q002"]
        assert any(d.severity is Severity.ERROR for d in diags)   # 300
        assert any(d.severity is Severity.WARNING for d in diags)  # 1

    def test_clean_fp_graph_has_no_q_findings(self):
        diags = [d for d in lint_graph(matmul_graph()) if d.rule.startswith("Q")]
        assert diags == []
