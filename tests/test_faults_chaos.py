"""Chaos-storm acceptance tests (the robustness contract, end to end).

Marked ``chaos`` so they can be selected with ``-m chaos``; they run in
the default suite too (the storm is sub-second on this substrate)."""

import pytest

from repro.faults.chaos import STORM_SITES, run_chaos_storm

pytestmark = pytest.mark.chaos


class TestChaosStorm:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos_storm(seed=0, target_faults=200)

    def test_storm_reaches_target_across_all_sites(self, report):
        assert report.injected >= 200
        for site in STORM_SITES:
            assert report.site_counts.get(site, 0) > 0, f"site {site} never fired"

    def test_zero_engine_crashes(self, report):
        assert report.crashes == 0
        assert all(p.crashes == 0 for p in report.phases)

    def test_degraded_responses_bit_identical(self, report):
        assert report.mismatched == 0
        # and the storm actually served most of its traffic
        assert report.requests - report.failed > report.failed

    def test_every_fault_absorbed_exactly_once(self, report):
        assert report.reconciled, (
            f"{report.injected} injected != {report.absorbed} absorbed "
            f"({report.retries} retries + {report.fallback_ops} op "
            f"+ {report.fallback_numeric} numeric + {report.fallback_cache} "
            f"cache + {report.isolated} isolated)"
        )

    def test_failed_requests_failed_alone(self, report):
        # Isolated failures exist (the storm injects unsurvivable
        # faults) but every one was typed — nothing took a batch or the
        # engine down with it.
        assert report.isolated > 0
        assert report.failed > 0

    def test_verdict_and_describe(self, report):
        assert report.ok
        text = report.describe()
        assert "verdict OK" in text
        assert "reconciled yes" in text


class TestChaosDeterminism:
    def test_same_seed_replays_identical_injection_sequence(self):
        first = run_chaos_storm(seed=3, target_faults=40)
        second = run_chaos_storm(seed=3, target_faults=40)
        assert first.ok and second.ok
        assert first.events == second.events
        assert first.site_counts == second.site_counts
        assert (first.retries, first.fallback_ops, first.fallback_numeric,
                first.fallback_cache, first.isolated) == (
            second.retries, second.fallback_ops, second.fallback_numeric,
            second.fallback_cache, second.isolated,
        )

    def test_different_seed_diverges(self):
        first = run_chaos_storm(seed=3, target_faults=40)
        other = run_chaos_storm(seed=4, target_faults=40)
        assert first.events != other.events


class TestChaosCli:
    def test_cli_chaos_selftest(self, capsys):
        from repro.tools.cli import main

        assert main(["chaos", "--seed", "1", "--faults", "40"]) == 0
        out = capsys.readouterr().out
        assert "verdict OK" in out
