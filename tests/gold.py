"""Gold-standard naive reference implementations.

Per the project's performance guide, every optimized kernel is validated
against a slow, obviously-correct loop version kept here in the test tree.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def conv2d_naive(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: Tuple[int, int] = (1, 1),
    pads: Tuple[int, int, int, int] = (0, 0, 0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> np.ndarray:
    """Direct convolution with explicit loops over output pixels."""
    n, ic, _, _ = x.shape
    oc = weights.shape[0]
    kh, kw = weights.shape[2], weights.shape[3]
    sh, sw = stride
    dh, dw = dilation
    top, bottom, left, right = pads
    xp = np.pad(x.astype(np.float64), ((0, 0), (0, 0), (top, bottom), (left, right)))
    eff_kh = (kh - 1) * dh + 1
    eff_kw = (kw - 1) * dw + 1
    oh = (xp.shape[2] - eff_kh) // sh + 1
    ow = (xp.shape[3] - eff_kw) // sw + 1
    icg, ocg = ic // groups, oc // groups
    out = np.zeros((n, oc, oh, ow))
    w64 = weights.astype(np.float64)
    for g in range(groups):
        for o in range(ocg):
            oc_idx = g * ocg + o
            for i in range(oh):
                for j in range(ow):
                    patch = xp[
                        :,
                        g * icg : (g + 1) * icg,
                        i * sh : i * sh + eff_kh : dh,
                        j * sw : j * sw + eff_kw : dw,
                    ]
                    out[:, oc_idx, i, j] = (patch * w64[oc_idx]).sum(axis=(1, 2, 3))
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1).astype(np.float64)
    return out


def depthwise_conv2d_naive(x, weights, bias=None, stride=(1, 1), pads=(0, 0, 0, 0),
                           dilation=(1, 1)):
    """Depthwise conv as a grouped conv with groups == channels."""
    return conv2d_naive(x, weights, bias, stride, pads, dilation, groups=x.shape[1])


def max_pool2d_naive(x, kernel, stride, pads, out_hw):
    kh, kw = kernel
    sh, sw = stride
    top, bottom, left, right = pads
    oh, ow = out_hw
    need_h = (oh - 1) * sh + kh
    need_w = (ow - 1) * sw + kw
    grow_h = max(0, need_h - (x.shape[2] + top + bottom))
    grow_w = max(0, need_w - (x.shape[3] + left + right))
    xp = np.pad(
        x,
        ((0, 0), (0, 0), (top, bottom + grow_h), (left, right + grow_w)),
        constant_values=-np.inf,
    )
    out = np.empty((x.shape[0], x.shape[1], oh, ow), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            out[:, :, i, j] = xp[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw].max(axis=(2, 3))
    return out


def avg_pool2d_naive(x, kernel, stride, pads, out_hw, count_include_pad=False):
    kh, kw = kernel
    sh, sw = stride
    top, bottom, left, right = pads
    oh, ow = out_hw
    mask = np.pad(np.ones_like(x), ((0, 0), (0, 0), (top, bottom), (left, right)))
    xp = np.pad(x, ((0, 0), (0, 0), (top, bottom), (left, right)))
    need_h = (oh - 1) * sh + kh
    need_w = (ow - 1) * sw + kw
    grow_h = max(0, need_h - xp.shape[2])
    grow_w = max(0, need_w - xp.shape[3])
    xp = np.pad(xp, ((0, 0), (0, 0), (0, grow_h), (0, grow_w)))
    mask = np.pad(mask, ((0, 0), (0, 0), (0, grow_h), (0, grow_w)))
    out = np.empty((x.shape[0], x.shape[1], oh, ow), dtype=np.float64)
    for i in range(oh):
        for j in range(ow):
            window = xp[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
            if count_include_pad:
                out[:, :, i, j] = window.sum(axis=(2, 3)) / (kh * kw)
            else:
                counts = mask[:, :, i * sh : i * sh + kh, j * sw : j * sw + kw].sum(axis=(2, 3))
                out[:, :, i, j] = window.sum(axis=(2, 3)) / counts
    return out


def conv_transpose2d_naive(x, weights, bias=None, stride=(1, 1), pads=(0, 0, 0, 0),
                           output_padding=(0, 0)):
    n, ic, ih, iw = x.shape
    _, oc, kh, kw = weights.shape
    sh, sw = stride
    top, bottom, left, right = pads
    full = np.zeros((n, oc, (ih - 1) * sh + kh, (iw - 1) * sw + kw))
    for b in range(n):
        for c_in in range(ic):
            for i in range(ih):
                for j in range(iw):
                    full[b, :, i * sh : i * sh + kh, j * sw : j * sw + kw] += (
                        x[b, c_in, i, j] * weights[c_in]
                    )
    oh = full.shape[2] - top - bottom + output_padding[0]
    ow = full.shape[3] - left - right + output_padding[1]
    out = np.zeros((n, oc, oh, ow))
    crop = full[:, :, top : top + oh, left : left + ow]
    out[:, :, : crop.shape[2], : crop.shape[3]] = crop
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out
