"""Incremental attention, the decoder-only model builder, and the
bucketed prefill/decode runners.

The load-bearing contract everywhere here is *bit-identity*: attending
one query row against cached K/V must reproduce the exact bits of the
same row inside a full-sequence recompute, because the genai subsystem
reuses that equality to serve autoregressive decoding on prepared
fixed-shape graphs."""

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.genai import (
    DecodeRunner,
    KVCacheAllocator,
    KVCacheConfig,
    PrefillRunner,
    batch_buckets,
    bucket_for_batch,
    bucket_for_length,
    length_buckets,
)
from repro.ir import DataType, GraphBuilder, GraphError, Op
from repro.kernels import attention, attention_step
from repro.models import build_model, tiny_decoder
from repro.obs.metrics import MetricsRegistry, set_metrics

pytestmark = pytest.mark.genai

RNG = np.random.default_rng(21)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


def qkv(n=1, h=2, t=6, dh=8):
    return (RNG.standard_normal((n, h, t, dh)).astype(np.float32) for _ in range(3))


class TestAttentionKernel:
    def test_causal_masks_the_future(self):
        q, k, v = qkv()
        out = attention(q, k, v, causal=True)
        # Row 0 sees only key 0; perturbing the last key must not move it.
        k2 = k.copy()
        k2[:, :, -1] += 100.0
        out2 = attention(q, k2, v, causal=True)
        np.testing.assert_array_equal(out[:, :, 0], out2[:, :, 0])
        assert not np.array_equal(out[:, :, -1], out2[:, :, -1])

    def test_non_causal_attends_everywhere(self):
        q, k, v = qkv()
        out = attention(q, k, v, causal=False)
        k2 = k.copy()
        k2[:, :, -1] += 100.0
        out2 = attention(q, k2, v, causal=False)
        assert not np.array_equal(out[:, :, 0], out2[:, :, 0])

    def test_matches_naive_softmax_reference(self):
        n, h, t, dh = 2, 2, 5, 4
        q = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        k = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        v = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        got = attention(q, k, v, causal=True)
        for ni in range(n):
            for hi in range(h):
                for ti in range(t):
                    scores = (k[ni, hi, : ti + 1] @ q[ni, hi, ti]) * dh**-0.5
                    w = np.exp(scores - scores.max())
                    w /= w.sum()
                    np.testing.assert_allclose(
                        got[ni, hi, ti], w @ v[ni, hi, : ti + 1], atol=1e-5
                    )

    def test_step_bit_identical_to_full_at_every_position(self):
        """The satellite contract: decode-with-cache == recompute, bitwise,
        at every step of the sequence."""
        n, h, t, dh = 2, 2, 12, 8
        q = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        k = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        v = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        full = attention(q, k, v, causal=True)

        k_cache = np.zeros((n, h, t, dh), np.float32)
        v_cache = np.zeros((n, h, t, dh), np.float32)
        for step in range(t):
            lengths = np.full((n,), step, np.int32)
            got = attention_step(
                q[:, :, step], k[:, :, step], v[:, :, step],
                k_cache, v_cache, lengths,
            )
            np.testing.assert_array_equal(got, full[:, :, step])
            k_cache[:, :, step] = k[:, :, step]
            v_cache[:, :, step] = v[:, :, step]

    def test_chunked_prefill_bit_identical_to_full(self):
        """Cached continuation of a half-prefilled sequence matches the
        one-shot full computation bitwise (prefill/decode boundary can
        fall anywhere)."""
        n, h, t, dh, split = 1, 2, 10, 4, 6
        q = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        k = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        v = RNG.standard_normal((n, h, t, dh)).astype(np.float32)
        full = attention(q, k, v, causal=True)
        cap = 16
        k_cache = np.zeros((n, h, cap, dh), np.float32)
        v_cache = np.zeros((n, h, cap, dh), np.float32)
        k_cache[:, :, :split] = k[:, :, :split]
        v_cache[:, :, :split] = v[:, :, :split]
        lengths = np.full((n,), split, np.int32)
        got = attention(
            q[:, :, split:], k[:, :, split:], v[:, :, split:],
            lengths=lengths, k_cache=k_cache, v_cache=v_cache, causal=True,
        )
        np.testing.assert_array_equal(got, full[:, :, split:])

    def test_cache_rows_beyond_length_are_ignored(self):
        n, h, dh, cap = 1, 2, 4, 8
        q = RNG.standard_normal((n, h, dh)).astype(np.float32)
        k_new = RNG.standard_normal((n, h, dh)).astype(np.float32)
        v_new = RNG.standard_normal((n, h, dh)).astype(np.float32)
        k_cache = RNG.standard_normal((n, h, cap, dh)).astype(np.float32)
        v_cache = RNG.standard_normal((n, h, cap, dh)).astype(np.float32)
        lengths = np.array([3], np.int32)
        a = attention_step(q, k_new, v_new, k_cache, v_cache, lengths)
        k_cache[:, :, 3:] = 999.0  # garbage beyond the valid prefix
        v_cache[:, :, 3:] = -999.0
        b = attention_step(q, k_new, v_new, k_cache, v_cache, lengths)
        np.testing.assert_array_equal(a, b)

    def test_kv_shape_mismatch_rejected(self):
        q, k, v = qkv()
        with pytest.raises(ValueError, match="k/v shape mismatch"):
            attention(q, k, v[:, :, :3])

    def test_cache_must_come_in_pairs(self):
        q, k, v = qkv()
        with pytest.raises(ValueError, match="together"):
            attention(q, k, v, k_cache=np.zeros_like(k))


class TestAttentionOp:
    def test_shape_inference_and_execution(self):
        b = GraphBuilder()
        q = b.input("q", (1, 2, 4, 8))
        k = b.input("k", (1, 2, 4, 8))
        v = b.input("v", (1, 2, 4, 8))
        out = b.attention(q, k, v, causal=True)
        b.output(out)
        g = b.finish()
        assert g.desc(out).shape == (1, 2, 4, 8)
        feeds = {name: RNG.standard_normal((1, 2, 4, 8)).astype(np.float32)
                 for name in ("q", "k", "v")}
        got = Session(g).run(feeds)[out]
        np.testing.assert_array_equal(
            got, attention(feeds["q"], feeds["k"], feeds["v"], causal=True)
        )

    def test_cached_variant_in_graph(self):
        b = GraphBuilder()
        q = b.input("q", (2, 2, 1, 8))
        k = b.input("k", (2, 2, 1, 8))
        v = b.input("v", (2, 2, 1, 8))
        lengths = b.input("lengths", (2,), DataType.INT32)
        kc = b.input("kc", (2, 2, 16, 8))
        vc = b.input("vc", (2, 2, 16, 8))
        out = b.attention(q, k, v, lengths, kc, vc)
        b.output(out)
        g = b.finish()
        assert g.desc(out).shape == (2, 2, 1, 8)

    def test_partial_cache_args_rejected(self):
        b = GraphBuilder()
        q = b.input("q", (1, 2, 4, 8))
        with pytest.raises(GraphError, match="together"):
            b.attention(q, q, q, lengths="q")

    def test_bad_cache_geometry_rejected(self):
        b = GraphBuilder()
        q = b.input("q", (2, 2, 1, 8))
        lengths = b.input("lengths", (2,), DataType.INT32)
        kc = b.input("kc", (2, 2, 16, 4))  # wrong d_head
        b.attention(q, q, q, lengths, kc, kc)
        with pytest.raises(GraphError, match="cache must be"):
            b.finish()

    def test_float_lengths_rejected(self):
        b = GraphBuilder()
        q = b.input("q", (2, 2, 1, 8))
        lengths = b.input("lengths", (2,))  # float32
        kc = b.input("kc", (2, 2, 16, 8))
        b.attention(q, q, q, lengths, kc, kc)
        with pytest.raises(GraphError, match="integer"):
            b.finish()


class TestBuckets:
    def test_length_buckets_end_at_max(self):
        assert length_buckets(48, smallest=8) == [8, 16, 32, 48]
        assert length_buckets(8, smallest=8) == [8]
        assert length_buckets(6, smallest=8) == [6]

    def test_bucket_for_length(self):
        buckets = length_buckets(64)
        assert bucket_for_length(1, buckets) == 8
        assert bucket_for_length(9, buckets) == 16
        assert bucket_for_length(64, buckets) == 64
        with pytest.raises(ValueError, match="exceeds"):
            bucket_for_length(65, buckets)

    def test_batch_buckets(self):
        assert batch_buckets(6) == [1, 2, 4, 6]
        assert bucket_for_batch(3, batch_buckets(6)) == 4


class TestTinyDecoder:
    def test_full_mode_outputs(self):
        g = tiny_decoder(vocab=50, max_seq=16, d_model=16, heads=2, layers=2,
                         seq_len=8)
        session = Session(g)
        out = session.run({
            "tokens": RNG.integers(0, 50, (1, 8)).astype(np.int32),
            "positions": np.arange(8, dtype=np.int32)[None],
        })
        assert out["logits"].shape == (1, 8, 50)
        for layer in range(2):
            assert out[f"l{layer}_k"].shape == (1, 2, 8, 8)
            assert out[f"l{layer}_v"].shape == (1, 2, 8, 8)

    def test_configurable_architecture(self):
        g = tiny_decoder(vocab=30, max_seq=8, d_model=24, heads=3, layers=3,
                         seq_len=4)
        hist = g.op_histogram()
        assert hist[Op.ATTENTION] == 3
        # 2 LN per layer + final
        assert hist[Op.LAYER_NORM] == 7
        out = Session(g).run({
            "tokens": RNG.integers(0, 30, (1, 4)).astype(np.int32),
            "positions": np.arange(4, dtype=np.int32)[None],
        })
        assert out["logits"].shape == (1, 4, 30)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            tiny_decoder(d_model=30, heads=4)
        with pytest.raises(ValueError, match="mode"):
            tiny_decoder(mode="streaming")
        with pytest.raises(ValueError, match="exceeds max_seq"):
            tiny_decoder(max_seq=8, seq_len=16)

    def test_registry_build(self):
        g = build_model("tiny_decoder", seq_len=4, vocab=16, max_seq=8,
                        d_model=16, heads=2, layers=1)
        assert g.name.startswith("tiny_decoder")

    def test_causality_prefix_invariance(self):
        """Logits for a prefix are unchanged by what follows it."""
        kwargs = dict(vocab=40, max_seq=16, d_model=16, heads=2, layers=2, seed=5)
        g = tiny_decoder(seq_len=12, **kwargs)
        session = Session(g)
        base = RNG.integers(0, 40, (1, 12)).astype(np.int32)
        changed = base.copy()
        changed[0, 8:] = (changed[0, 8:] + 7) % 40
        positions = np.arange(12, dtype=np.int32)[None]
        a = session.run({"tokens": base, "positions": positions})["logits"]
        b = session.run({"tokens": changed, "positions": positions})["logits"]
        np.testing.assert_array_equal(a[0, :8], b[0, :8])
        assert not np.array_equal(a[0, 8:], b[0, 8:])

    def test_decode_mode_bit_identical_to_full(self):
        """One decode-mode step reproduces the full-mode logits row bitwise
        (same weights via the shared seed; same per-row kernels)."""
        kwargs = dict(vocab=32, max_seq=16, d_model=16, heads=2, layers=2, seed=9)
        tokens = RNG.integers(0, 32, 10).astype(np.int32)
        full = Session(tiny_decoder(seq_len=10, **kwargs)).run({
            "tokens": tokens[None],
            "positions": np.arange(10, dtype=np.int32)[None],
        })

        cap = 16
        decode_g = tiny_decoder(mode="decode", batch=1, cache_len=cap, **kwargs)
        session = Session(decode_g)
        k_cache = {l: np.zeros((1, 2, cap, 8), np.float32) for l in range(2)}
        v_cache = {l: np.zeros((1, 2, cap, 8), np.float32) for l in range(2)}
        for step in range(10):
            feeds = {
                "tokens": tokens[step].reshape(1, 1),
                "positions": np.array([[step]], np.int32),
                "lengths": np.array([step], np.int32),
            }
            for l in range(2):
                feeds[f"l{l}_k_cache"] = k_cache[l]
                feeds[f"l{l}_v_cache"] = v_cache[l]
            out = session.run(feeds)
            np.testing.assert_array_equal(
                out["logits"][0, 0], full["logits"][0, step],
                err_msg=f"decode step {step} diverged from full recompute",
            )
            for l in range(2):
                np.testing.assert_array_equal(
                    out[f"l{l}_k"][0, :, 0], full[f"l{l}_k"][0, :, step]
                )
                k_cache[l][0, :, step] = out[f"l{l}_k"][0, :, 0]
                v_cache[l][0, :, step] = out[f"l{l}_v"][0, :, 0]


def _kv_config(**overrides):
    base = dict(layers=1, heads=2, d_head=8, page_tokens=8,
                capacity_tokens=128, max_seq=32)
    base.update(overrides)
    return KVCacheConfig(**base)


MODEL = dict(vocab=32, max_seq=32, d_model=16, heads=2, layers=1, seed=3)


def _full_graph(seq_len):
    return tiny_decoder(mode="full", seq_len=seq_len, batch=1, **MODEL)


def _decode_graph(batch, capacity):
    return tiny_decoder(mode="decode", batch=batch, cache_len=capacity, **MODEL)


class TestRunners:
    def test_prefill_fills_slab_and_pads_freely(self):
        """Bucket padding must not change the prompt's logits or K/V."""
        alloc = KVCacheAllocator(_kv_config())
        runner = PrefillRunner(_full_graph, max_seq=32, layers=1,
                               smallest_bucket=8)
        prompt = [int(t) for t in RNG.integers(0, 32, 5)]
        slab = alloc.alloc("s", len(prompt) + 1)
        logits = runner.run(prompt, slab)  # bucket 8, 3 rows of padding
        assert slab.length == len(prompt)

        # Reference: an exact-length graph, no padding at all.
        ref = Session(_full_graph(len(prompt))).run({
            "tokens": np.asarray(prompt, np.int32)[None],
            "positions": np.arange(len(prompt), dtype=np.int32)[None],
        })
        np.testing.assert_array_equal(logits, ref["logits"][0, -1])
        np.testing.assert_array_equal(
            slab.k(0)[:, : len(prompt)], ref["l0_k"][0][:, : len(prompt)]
        )

    def test_prefill_rejects_oversized_prompt(self):
        alloc = KVCacheAllocator(_kv_config())
        runner = PrefillRunner(_full_graph, max_seq=32, layers=1)
        slab = alloc.alloc("s", 4)
        with pytest.raises(ValueError, match="cannot hold"):
            runner.run(list(range(10)), slab)
        with pytest.raises(ValueError, match="empty"):
            runner.run([], slab)

    def test_prefill_prepares_each_bucket_once(self):
        alloc = KVCacheAllocator(_kv_config())
        runner = PrefillRunner(_full_graph, max_seq=32, layers=1,
                               smallest_bucket=8)
        for i, n in enumerate((3, 5, 8)):  # all land in the 8-bucket
            slab = alloc.alloc(f"s{i}", n + 1)
            runner.run([1] * n, slab)
        assert list(runner._pools) == [8]
        runner.warm()
        assert sorted(runner._pools) == [8, 16, 32]

    def test_decode_step_advances_all_slabs(self):
        alloc = KVCacheAllocator(_kv_config())
        prefill = PrefillRunner(_full_graph, max_seq=32, layers=1)
        decode = DecodeRunner(_decode_graph, layers=1, max_batch=4)
        slabs = []
        for i in range(3):
            slab = alloc.alloc(f"s{i}", 4)
            prefill.run([int(t) for t in RNG.integers(0, 32, 3)], slab)
            slabs.append(slab)
        logits = decode.step([1, 2, 3], slabs)
        assert logits.shape == (3, 32)
        assert all(s.length == 4 for s in slabs)
        # 3 sequences pad up to the 4-batch bucket; one prepared session.
        assert decode.prepared == [(4, 8)]

    def test_decode_rejects_mixed_buckets_and_full_slabs(self):
        alloc = KVCacheAllocator(_kv_config())
        decode = DecodeRunner(_decode_graph, layers=1, max_batch=4)
        small = alloc.alloc("small", 8)
        big = alloc.alloc("big", 16)
        small.length, big.length = 4, 9
        with pytest.raises(ValueError, match="mixes capacity"):
            decode.step([1, 2], [small, big])
        full = alloc.alloc("full", 8)
        full.length = 8
        with pytest.raises(ValueError, match="grow first"):
            decode.step([1], [full])
        with pytest.raises(ValueError, match="mismatch"):
            decode.step([1, 2], [small])

    def test_decode_batch_composition_invariance(self):
        """A sequence's logits must not depend on its batch neighbours —
        the property that makes continuous batching output-transparent."""
        def run_pair(tokens, lengths, together):
            alloc = KVCacheAllocator(_kv_config())
            prefill = PrefillRunner(_full_graph, max_seq=32, layers=1)
            decode = DecodeRunner(_decode_graph, layers=1, max_batch=4)
            slabs = []
            for i, (tok, ln) in enumerate(zip(tokens, lengths)):
                slab = alloc.alloc(f"s{i}", ln + 1)
                prefill.run(tok[:ln], slab)
                slabs.append(slab)
            if together:
                return decode.step([5, 6], slabs)
            a = decode.step([5], [slabs[0]])
            b = decode.step([6], [slabs[1]])
            return np.concatenate([a, b], axis=0)

        toks = [[int(t) for t in RNG.integers(0, 32, 6)] for _ in range(2)]
        lens = [4, 6]
        joint = run_pair(toks, lens, together=True)
        solo = run_pair(toks, lens, together=False)
        np.testing.assert_array_equal(joint, solo)
