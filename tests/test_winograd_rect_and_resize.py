"""Tests for rectangular Winograd and Session.resize (pre-inference re-run)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Session, SessionConfig
from repro.ir import GraphBuilder, GraphError
from repro.kernels import winograd_conv2d_rect

from .gold import conv2d_naive

RNG = np.random.default_rng(91)


class TestRectangularWinograd:
    @pytest.mark.parametrize(
        "kh,kw,nh,nw",
        [
            (1, 7, 1, 2),  # Inception's 1x7
            (7, 1, 2, 1),  # Inception's 7x1
            (1, 7, 1, 4),
            (3, 5, 2, 2),
            (5, 3, 2, 4),
            (1, 3, 1, 6),
            (3, 3, 2, 4),  # square kernel, rectangular tiles
        ],
    )
    def test_matches_naive(self, kh, kw, nh, nw):
        x = RNG.standard_normal((2, 3, 16, 16)).astype(np.float32)
        w = RNG.standard_normal((5, 3, kh, kw)).astype(np.float32)
        bias = RNG.standard_normal(5).astype(np.float32)
        pads = (kh // 2, kh // 2, kw // 2, kw // 2)
        got = winograd_conv2d_rect(x, w, bias, n_hw=(nh, nw), pads=pads)
        want = conv2d_naive(x, w, bias, pads=pads)
        np.testing.assert_allclose(got, want, atol=1e-3 * max(1, np.abs(want).max()))

    def test_degenerate_1x1_kernel(self):
        """Both axes k=1: pure channel mixing, identity transforms."""
        x = RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = RNG.standard_normal((6, 4, 1, 1)).astype(np.float32)
        got = winograd_conv2d_rect(x, w, n_hw=(2, 2))
        want = conv2d_naive(x, w)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_kernel_too_large(self):
        x = RNG.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = RNG.standard_normal((2, 2, 1, 9)).astype(np.float32)
        with pytest.raises(ValueError, match="does not fit"):
            winograd_conv2d_rect(x, w, n_hw=(1, 2))

    @given(
        kh=st.sampled_from([1, 3]),
        kw=st.sampled_from([1, 3, 5, 7]),
        nh=st.integers(1, 3),
        nw=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_any_rect_config(self, kh, kw, nh, nw):
        x = RNG.standard_normal((1, 2, 14, 14)).astype(np.float32)
        w = RNG.standard_normal((3, 2, kh, kw)).astype(np.float32)
        got = winograd_conv2d_rect(x, w, n_hw=(nh, nw))
        want = conv2d_naive(x, w)
        np.testing.assert_allclose(got, want, atol=1e-3 * max(1, np.abs(want).max()))


def resizable_net():
    """Conv-only trunk + GAP head: valid at any spatial size >= 8."""
    b = GraphBuilder("resizable", seed=4)
    x = b.input("in", (1, 3, 32, 32))
    x = b.conv(x, oc=8, kernel=3, stride=2, activation="relu")
    x = b.conv(x, oc=16, kernel=3, activation="relu")
    x = b.fc(b.global_avg_pool(x), units=4)
    b.output(b.softmax(x))
    return b.finish()


class TestSessionResize:
    def test_resize_and_run(self):
        session = Session(resizable_net())
        session.resize({"in": (1, 3, 64, 64)})
        out = session.run(
            {"in": RNG.standard_normal((1, 3, 64, 64)).astype(np.float32)}
        )
        assert list(out.values())[0].shape == (1, 4)

    def test_old_shape_rejected_after_resize(self):
        session = Session(resizable_net())
        session.resize({"in": (1, 3, 48, 48)})
        with pytest.raises(GraphError, match="expected shape"):
            session.run({"in": np.zeros((1, 3, 32, 32), np.float32)})

    def test_memory_plan_recomputed(self):
        session = Session(resizable_net())
        small = session.memory_plan.arena_bytes
        session.resize({"in": (1, 3, 128, 128)})
        big = session.memory_plan.arena_bytes
        assert big > small * 4  # quadratic growth in resolution
        session.memory_plan.validate()

    def test_schemes_recomputed(self):
        session = Session(resizable_net())
        before = dict(session.schemes)
        session.resize({"in": (1, 3, 224, 224)})
        assert set(session.schemes) == set(before)  # same conv nodes
        # larger maps may change tile choices; decisions must exist & be valid
        for decision in session.schemes.values():
            assert decision.kind in ("sliding", "winograd", "gemm1x1")

    def test_unknown_input_rejected(self):
        session = Session(resizable_net())
        with pytest.raises(GraphError, match="not a graph input"):
            session.resize({"ghost": (1, 3, 64, 64)})

    def test_incompatible_resize_rejected(self):
        # a valid-padding conv stops fitting once the input shrinks below k
        b = GraphBuilder("strict", seed=0)
        x = b.input("in", (1, 3, 16, 16))
        x = b.conv(x, oc=4, kernel=3, pad_mode="valid")
        b.output(b.global_avg_pool(x))
        session = Session(b.finish())
        with pytest.raises(GraphError):
            session.resize({"in": (1, 3, 2, 2)})  # window no longer fits

    def test_tiny_resize_with_same_padding_still_works(self):
        session = Session(resizable_net())
        session.resize({"in": (1, 3, 8, 8)})
        out = session.run({"in": RNG.standard_normal((1, 3, 8, 8)).astype(np.float32)})
        assert list(out.values())[0].shape == (1, 4)

    def test_resize_matches_fresh_session(self):
        feed = {"in": RNG.standard_normal((1, 3, 64, 64)).astype(np.float32)}
        resized = Session(resizable_net())
        resized.resize({"in": (1, 3, 64, 64)})
        fresh = Session(resizable_net())
        # fresh graph built at 32 then resized must equal a 32->64 resize of
        # the same seeded weights: rebuild with identical seed at 64
        b = GraphBuilder("resizable", seed=4)
        x = b.input("in", (1, 3, 64, 64))
        x = b.conv(x, oc=8, kernel=3, stride=2, activation="relu")
        x = b.conv(x, oc=16, kernel=3, activation="relu")
        x = b.fc(b.global_avg_pool(x), units=4)
        b.output(b.softmax(x))
        want = list(Session(b.finish()).run(feed).values())[0]
        got = list(resized.run(feed).values())[0]
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_resize_on_gpu_session(self):
        from repro.devices import get_device

        session = Session(
            resizable_net(),
            SessionConfig(backend="vulkan", device=get_device("MI6")),
        )
        session.resize({"in": (1, 3, 64, 64)})
        out = session.run(
            {"in": RNG.standard_normal((1, 3, 64, 64)).astype(np.float32)}
        )
        assert np.isfinite(list(out.values())[0]).all()
