"""Regression tests for the session bugs the serving layer exposed.

Three latent bugs made ``Session`` unsafe for concurrent serving:

1. ``resize`` replaced the *shared* graph's descriptors before shape
   inference ran, so a failing resize left both the graph and the session
   half-resized — and corrupted every other session sharing the graph.
2. ``run`` promised ``GraphError`` on dtype mismatches but never checked
   dtypes, letting float64/int feeds flow silently into kernels.
3. ``_execute_parallel`` read the tensor environment without the lock,
   dropped all but the first worker error, and let already-submitted
   nodes keep executing after a failure.
"""

import threading

import numpy as np
import pytest

from repro.core import Session, SessionConfig
from repro.ir import GraphBuilder, GraphError

RNG = np.random.default_rng(77)


def fc_net(hw=16):
    """Conv + flatten + fc: resizing the input changes the flattened
    feature count, so resize to a new spatial size *must* fail (the fc
    weight is fixed) — the perfect probe for resize atomicity."""
    b = GraphBuilder("fcnet", seed=0)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=8, kernel=3, pad_mode="same", activation="relu")
    x = b.fc(b.flatten(x), units=5)
    b.output(b.softmax(x))
    return b.finish()


def gap_net(hw=16):
    """Conv + global-avg-pool + fc: resizes cleanly to any spatial size."""
    b = GraphBuilder("gapnet", seed=0)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=8, kernel=3, pad_mode="same", activation="relu")
    x = b.fc(b.global_avg_pool(x), units=5)
    b.output(b.softmax(x))
    return b.finish()


def feed(hw=16, batch=1):
    return {"data": RNG.standard_normal((batch, 3, hw, hw)).astype(np.float32)}


class TestResizeAtomicity:
    def test_failing_resize_leaves_session_usable(self):
        session = Session(fc_net(16))
        before = list(session.run(feed(16)).values())[0]
        with pytest.raises(GraphError):
            session.resize({"data": (1, 3, 24, 24)})  # fc weight can't take it
        # descriptors are unchanged and the session still serves old shapes
        assert session.graph.desc("data").shape == (1, 3, 16, 16)
        after = list(session.run(feed(16)).values())[0]
        assert after.shape == before.shape

    def test_failing_resize_during_prepare_restores_state(self, monkeypatch):
        session = Session(gap_net(16))
        x = feed(16)
        gold = list(session.run(x).values())[0]
        old_plan = session.memory_plan

        import repro.core.session as session_mod

        def explode(*args, **kwargs):
            raise RuntimeError("planner exploded")

        monkeypatch.setattr(session_mod, "plan_memory", explode)
        with pytest.raises(RuntimeError, match="planner exploded"):
            session.resize({"data": (1, 3, 24, 24)})
        monkeypatch.undo()
        # every piece of pre-inference state rolled back
        assert session.graph.desc("data").shape == (1, 3, 16, 16)
        assert session.memory_plan is old_plan
        again = list(session.run(x).values())[0]
        np.testing.assert_array_equal(again, gold)

    def test_resize_does_not_clobber_shared_graph(self):
        graph = gap_net(16)
        a = Session(graph)
        b = Session(graph)
        a.resize({"data": (1, 3, 24, 24)})
        # b (and the original graph object) still see the old descriptors
        assert graph.desc("data").shape == (1, 3, 16, 16)
        assert b.graph.desc("data").shape == (1, 3, 16, 16)
        out_b = list(b.run(feed(16)).values())[0]
        out_a = list(a.run(feed(24)).values())[0]
        assert out_a.shape == out_b.shape == (1, 5)

    def test_unknown_input_rejected_before_any_mutation(self):
        session = Session(gap_net(16))
        with pytest.raises(GraphError, match="not a graph input"):
            session.resize({"nope": (1, 3, 8, 8)})
        assert session.graph.desc("data").shape == (1, 3, 16, 16)

    def test_successful_resize_still_works(self):
        session = Session(gap_net(16))
        session.resize({"data": (2, 3, 32, 32)})
        out = list(session.run(feed(32, batch=2)).values())[0]
        assert out.shape == (2, 5)


class TestDtypeValidation:
    def test_float64_feed_raises(self):
        session = Session(gap_net())
        with pytest.raises(GraphError, match="expected dtype float32"):
            session.run({"data": np.zeros((1, 3, 16, 16), np.float64)})

    def test_int_feed_raises(self):
        session = Session(gap_net())
        with pytest.raises(GraphError, match="expected dtype float32"):
            session.run({"data": np.zeros((1, 3, 16, 16), np.int32)})

    def test_parallel_path_checks_dtype_too(self):
        session = Session(
            gap_net(), SessionConfig(parallel_branches=True, threads=2)
        )
        with pytest.raises(GraphError, match="expected dtype float32"):
            session.run({"data": np.zeros((1, 3, 16, 16), np.float64)})

    def test_correct_dtype_still_accepted(self):
        session = Session(gap_net())
        out = list(session.run(feed()).values())[0]
        assert out.dtype == np.float32


def two_branch_net():
    """Two independent conv branches joined at the end — both branches are
    initial nodes of the parallel executor, so both can fail at once."""
    b = GraphBuilder("branches", seed=1)
    x = b.input("in", (1, 4, 12, 12))
    left = b.conv(x, oc=4, kernel=1, name="left")
    right = b.conv(x, oc=4, kernel=1, name="right")
    b.output(b.add(left, right))
    return b.finish()


class TestParallelExecutorFailures:
    def test_all_worker_errors_reported(self):
        session = Session(
            two_branch_net(), SessionConfig(parallel_branches=True, threads=4)
        )
        barrier = threading.Barrier(2, timeout=10)

        def boom(tag):
            def fn(inputs):
                barrier.wait()  # guarantee both workers are mid-run
                raise ValueError(f"kernel {tag} failed")
            return fn

        session._executions["left"].runner.fn = boom("left")
        session._executions["right"].runner.fn = boom("right")
        with pytest.raises(GraphError, match="2 worker errors") as excinfo:
            session.run({"in": np.zeros((1, 4, 12, 12), np.float32)})
        messages = sorted(str(e) for e in excinfo.value.errors)
        assert messages == ["kernel left failed", "kernel right failed"]

    def test_single_error_raised_unwrapped(self):
        session = Session(
            two_branch_net(), SessionConfig(parallel_branches=True, threads=4)
        )

        class Boom(Exception):
            pass

        def explode(inputs):
            raise Boom("solo failure")

        session._executions["left"].runner.fn = explode
        with pytest.raises(Boom, match="solo failure"):
            session.run({"in": np.zeros((1, 4, 12, 12), np.float32)})

    def test_downstream_nodes_drained_after_failure(self):
        """Consumers of a failed node must not execute."""
        b = GraphBuilder("chain", seed=0)
        x = b.input("in", (1, 4, 8, 8))
        mid = b.conv(x, oc=4, kernel=1, name="mid")
        b.output(b.relu(mid, name="tail"))
        g = b.finish()
        session = Session(g, SessionConfig(parallel_branches=True, threads=2))

        ran = []

        def explode(inputs):
            raise RuntimeError("upstream dead")

        tail_fn = session._executions["tail"].runner.fn

        def spy(inputs):
            ran.append("tail")
            return tail_fn(inputs)

        session._executions["mid"].runner.fn = explode
        session._executions["tail"].runner.fn = spy
        with pytest.raises(RuntimeError, match="upstream dead"):
            session.run({"in": np.zeros((1, 4, 8, 8), np.float32)})
        assert ran == []

    def test_parallel_matches_serial_under_thread_storm(self):
        """Many concurrent runs on *separate* sessions agree with serial."""
        g = two_branch_net()
        serial = Session(g)
        x = {"in": RNG.standard_normal((1, 4, 12, 12)).astype(np.float32)}
        want = list(serial.run(x).values())[0]

        sessions = [
            Session(g, SessionConfig(parallel_branches=True, threads=2))
            for _ in range(4)
        ]
        results = [None] * 8
        def worker(i):
            results[i] = list(sessions[i % 4].run(x).values())[0]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got in results:
            np.testing.assert_allclose(got, want, atol=1e-6)
