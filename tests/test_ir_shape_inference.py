"""Tests for per-op shape inference and padding resolution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Graph, GraphBuilder, GraphError, Op, infer_shapes, resolve_padding
from repro.ir.shape_inference import conv_output_hw


class TestPadding:
    def test_valid_is_zero(self):
        assert resolve_padding("valid", (9, 9, 9, 9), (32, 32), (3, 3), (1, 1)) == (0, 0, 0, 0)

    def test_explicit_passthrough(self):
        assert resolve_padding("explicit", (1, 2, 3, 4), (32, 32), (3, 3), (1, 1)) == (1, 2, 3, 4)

    def test_same_stride1_keeps_size(self):
        pads = resolve_padding("same", (0,) * 4, (32, 32), (3, 3), (1, 1))
        assert conv_output_hw((32, 32), (3, 3), (1, 1), pads) == (32, 32)

    def test_same_stride2_halves(self):
        pads = resolve_padding("same", (0,) * 4, (224, 224), (3, 3), (2, 2))
        assert conv_output_hw((224, 224), (3, 3), (2, 2), pads) == (112, 112)

    def test_same_with_dilation(self):
        pads = resolve_padding("same", (0,) * 4, (16, 16), (3, 3), (1, 1), (2, 2))
        assert conv_output_hw((16, 16), (3, 3), (1, 1), pads, (2, 2)) == (16, 16)

    def test_unknown_mode(self):
        with pytest.raises(GraphError, match="pad_mode"):
            resolve_padding("weird", (0,) * 4, (8, 8), (3, 3), (1, 1))

    @given(
        size=st.integers(4, 64),
        k=st.integers(1, 7),
        s=st.integers(1, 3),
    )
    @settings(max_examples=60)
    def test_same_matches_ceil_formula(self, size, k, s):
        pads = resolve_padding("same", (0,) * 4, (size, size), (k, k), (s, s))
        oh, ow = conv_output_hw((size, size), (k, k), (s, s), pads)
        expected = -(-size // s)  # ceil
        assert (oh, ow) == (expected, expected)

    def test_window_too_large_raises(self):
        with pytest.raises(GraphError, match="does not fit"):
            conv_output_hw((2, 2), (5, 5), (1, 1), (0, 0, 0, 0))


def _single_op_graph(op_type, in_shape, attrs, extra_inputs=()):
    g = Graph()
    g.add_input("x", in_shape)
    names = ["x"]
    for i, arr in enumerate(extra_inputs):
        names.append(g.add_constant(f"c{i}", arr))
    g.add_node(op_type, names, ["y"], attrs)
    g.mark_output("y")
    infer_shapes(g)
    return g.desc("y").shape


class TestOpInference:
    def test_conv_basic(self):
        shape = _single_op_graph(
            Op.CONV2D,
            (2, 3, 224, 224),
            {"kernel": (7, 7), "stride": (2, 2), "pad_mode": "same", "has_bias": False},
            [np.zeros((64, 3, 7, 7), np.float32)],
        )
        assert shape == (2, 64, 112, 112)

    def test_conv_weight_mismatch(self):
        with pytest.raises(GraphError, match="weight shape"):
            _single_op_graph(
                Op.CONV2D,
                (1, 3, 8, 8),
                {"kernel": (3, 3), "has_bias": False},
                [np.zeros((4, 5, 3, 3), np.float32)],
            )

    def test_grouped_conv(self):
        shape = _single_op_graph(
            Op.CONV2D,
            (1, 8, 10, 10),
            {"kernel": (3, 3), "groups": 2, "pad_mode": "same", "has_bias": False},
            [np.zeros((16, 4, 3, 3), np.float32)],
        )
        assert shape == (1, 16, 10, 10)

    def test_groups_must_divide(self):
        with pytest.raises(GraphError, match="divisible"):
            _single_op_graph(
                Op.CONV2D,
                (1, 9, 8, 8),
                {"kernel": (1, 1), "groups": 2, "has_bias": False},
                [np.zeros((4, 4, 1, 1), np.float32)],
            )

    def test_depthwise(self):
        shape = _single_op_graph(
            Op.DEPTHWISE_CONV2D,
            (1, 32, 56, 56),
            {"kernel": (3, 3), "stride": (2, 2), "pad_mode": "same", "groups": 32,
             "has_bias": False},
            [np.zeros((32, 1, 3, 3), np.float32)],
        )
        assert shape == (1, 32, 28, 28)

    def test_conv_transpose(self):
        shape = _single_op_graph(
            Op.CONV_TRANSPOSE2D,
            (1, 8, 8, 8),
            {"kernel": (3, 3), "stride": (2, 2), "pad": (1, 1, 1, 1), "has_bias": False,
             "output_padding": (1, 1)},
            [np.zeros((8, 4, 3, 3), np.float32)],
        )
        assert shape == (1, 4, 16, 16)

    def test_matmul_with_transpose(self):
        g = Graph()
        g.add_input("a", (5, 7))
        g.add_constant("b", np.zeros((9, 7), np.float32))
        g.add_node(Op.MATMUL, ["a", "b"], ["y"], {"transpose_b": True})
        g.mark_output("y")
        infer_shapes(g)
        assert g.desc("y").shape == (5, 9)

    def test_matmul_inner_mismatch(self):
        g = Graph()
        g.add_input("a", (5, 7))
        g.add_constant("b", np.zeros((8, 3), np.float32))
        with pytest.raises(GraphError, match="inner"):
            g.add_node(Op.MATMUL, ["a", "b"], ["y"])
            infer_shapes(g)

    def test_fc_flattens_input(self):
        shape = _single_op_graph(
            Op.FULLY_CONNECTED,
            (2, 16, 4, 4),
            {"units": 10},
            [np.zeros((10, 256), np.float32), np.zeros(10, np.float32)],
        )
        assert shape == (2, 10)

    def test_binary_broadcast(self):
        g = Graph()
        g.add_input("a", (1, 8, 4, 4))
        g.add_constant("b", np.zeros((8, 1, 1), np.float32))
        g.add_node(Op.ADD, ["a", "b"], ["y"])
        g.mark_output("y")
        infer_shapes(g)
        assert g.desc("y").shape == (1, 8, 4, 4)

    def test_binary_incompatible(self):
        g = Graph()
        g.add_input("a", (1, 8, 4, 4))
        g.add_constant("b", np.zeros((3, 4, 4), np.float32))
        with pytest.raises(GraphError, match="broadcast"):
            g.add_node(Op.ADD, ["a", "b"], ["y"])
            infer_shapes(g)

    def test_pool_ceil_mode(self):
        shape = _single_op_graph(
            Op.MAX_POOL,
            (1, 4, 7, 7),
            {"kernel": (2, 2), "stride": (2, 2), "ceil_mode": True},
        )
        assert shape == (1, 4, 4, 4)
        shape = _single_op_graph(
            Op.MAX_POOL,
            (1, 4, 7, 7),
            {"kernel": (2, 2), "stride": (2, 2), "ceil_mode": False},
        )
        assert shape == (1, 4, 3, 3)

    def test_global_avg_pool(self):
        assert _single_op_graph(Op.GLOBAL_AVG_POOL, (3, 17, 9, 11), {}) == (3, 17, 1, 1)

    def test_concat_checks_other_dims(self):
        g = Graph()
        g.add_input("a", (1, 4, 8, 8))
        g.add_input("b", (1, 6, 8, 8))
        g.add_node(Op.CONCAT, ["a", "b"], ["y"], {"axis": 1})
        g.mark_output("y")
        infer_shapes(g)
        assert g.desc("y").shape == (1, 10, 8, 8)

        g2 = Graph()
        g2.add_input("a", (1, 4, 8, 8))
        g2.add_input("b", (1, 6, 9, 8))
        with pytest.raises(GraphError, match="mismatch"):
            g2.add_node(Op.CONCAT, ["a", "b"], ["y"], {"axis": 1})
            infer_shapes(g2)

    def test_reshape_with_minus_one(self):
        assert _single_op_graph(Op.RESHAPE, (2, 3, 4), {"shape": (2, -1)}) == (2, 12)

    def test_reshape_bad_volume(self):
        with pytest.raises(GraphError, match="incompatible"):
            _single_op_graph(Op.RESHAPE, (2, 3, 4), {"shape": (5, 5)})

    def test_flatten(self):
        assert _single_op_graph(Op.FLATTEN, (2, 3, 4, 5), {"axis": 1}) == (2, 60)
        assert _single_op_graph(Op.FLATTEN, (2, 3, 4, 5), {"axis": 2}) == (6, 20)

    def test_pad(self):
        assert _single_op_graph(
            Op.PAD, (1, 3, 4, 4), {"pads": (0, 0, 0, 0, 1, 1, 2, 2)}
        ) == (1, 3, 6, 8)

    def test_resize(self):
        assert _single_op_graph(Op.RESIZE, (1, 3, 8, 8), {"scale": (2, 2)}) == (1, 3, 16, 16)

    def test_reduce_mean(self):
        assert _single_op_graph(
            Op.REDUCE_MEAN, (1, 3, 8, 8), {"axes": (2, 3), "keepdims": True}
        ) == (1, 3, 1, 1)
        assert _single_op_graph(
            Op.REDUCE_MEAN, (1, 3, 8, 8), {"axes": (2, 3), "keepdims": False}
        ) == (1, 3)

    def test_slice(self):
        assert _single_op_graph(
            Op.SLICE, (1, 10, 4, 4), {"axis": 1, "start": 2, "end": 7}
        ) == (1, 5, 4, 4)

    def test_conflicting_reinference_rejected(self):
        b = GraphBuilder()
        x = b.input("in", (1, 3, 8, 8))
        y = b.relu(x)
        b.output(y)
        g = b.finish()
        from repro.ir import TensorDesc
        g.tensor_descs[y] = TensorDesc(y, (9, 9))
        with pytest.raises(GraphError, match="conflicts"):
            infer_shapes(g)
