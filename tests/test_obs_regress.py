"""Bench-regression gate and BENCH provenance stamps
(see repro.obs.regress / repro.bench.harness / repro.devices.host)."""

import json

import pytest

from repro.bench.harness import BENCH_SCHEMA, TimingResult, bench_record
from repro.devices.host import HostFingerprint, host_fingerprint
from repro.obs.regress import check_trajectory, extract_headline


def _stamp(host_key=None, schema=BENCH_SCHEMA):
    host = host_fingerprint().as_dict()
    if host_key is not None:
        host["key"] = host_key
    return {"schema": schema, "git_commit": "deadbeef", "host": host}


def _rec(median_ms=None, stamp=True, **extra):
    record = {"name": "demo", **extra}
    if median_ms is not None:
        record["timing"] = {"median_ms": median_ms}
    if stamp:
        record["stamp"] = _stamp() if stamp is True else stamp
    return record


def _write(tmp_path, records, name="BENCH_demo.json"):
    path = tmp_path / name
    path.write_text(json.dumps(records))
    return str(path)


class TestHostFingerprint:
    def test_fingerprint_is_cached_and_keyed(self):
        fp = host_fingerprint()
        assert fp is host_fingerprint()
        assert isinstance(fp, HostFingerprint)
        parts = fp.key.split("-")
        assert len(parts) >= 4 and parts[-1].startswith("py")
        assert fp.as_dict()["key"] == fp.key

    def test_bench_record_carries_the_stamp(self):
        record = bench_record(
            "demo", config={"x": 1}, timing=TimingResult([1.0, 2.0])
        )
        stamp = record["stamp"]
        assert stamp["schema"] == BENCH_SCHEMA
        assert stamp["host"]["key"] == host_fingerprint().key
        assert isinstance(stamp["git_commit"], str) and stamp["git_commit"]


class TestExtractHeadline:
    def test_all_sources(self):
        metrics = extract_headline({
            "timing": {"median_ms": 12.0},
            "headline": {"tps": {"value": 100.0, "direction": "higher"}},
            "speedup": 2.0,
            "config": {"prefix_hit_tokens_per_sec": 50.0, "prompts": 8},
        })
        assert metrics == {
            "timing.median_ms": (12.0, "lower"),
            "headline.tps": (100.0, "higher"),
            "speedup": (2.0, "higher"),
            "config.prefix_hit_tokens_per_sec": (50.0, "higher"),
        }

    def test_malformed_entries_ignored(self):
        assert extract_headline({
            "timing": {"median_ms": "fast"},
            "headline": {"x": {"value": 1.0, "direction": "sideways"}},
        }) == {}


class TestGate:
    def test_stable_trajectory_passes(self, tmp_path):
        path = _write(tmp_path, [_rec(10.0), _rec(11.0), _rec(10.5)])
        report = check_trajectory(path)
        assert report.ok
        assert report.baseline_runs == 2
        assert report.compared["timing.median_ms"]["baseline"] == 10.5

    def test_latency_regression_fails(self, tmp_path):
        path = _write(tmp_path, [_rec(10.0), _rec(10.0), _rec(40.0)])
        report = check_trajectory(path, threshold=0.5)
        assert not report.ok
        assert "timing.median_ms" in report.failures[0]
        assert "REGRESSION" in report.describe()

    def test_throughput_regression_fails(self, tmp_path):
        fast = _rec(headline={"tps": {"value": 100.0, "direction": "higher"}})
        slow = _rec(headline={"tps": {"value": 10.0, "direction": "higher"}})
        path = _write(tmp_path, [fast, fast, slow])
        report = check_trajectory(path, threshold=0.5)
        assert not report.ok

    def test_threshold_tolerates_noise(self, tmp_path):
        path = _write(tmp_path, [_rec(10.0), _rec(13.0)])
        assert check_trajectory(path, threshold=0.5).ok
        assert not check_trajectory(path, threshold=0.2).ok

    def test_cross_host_baselines_refused(self, tmp_path):
        other = _rec(10.0, stamp=_stamp(host_key="other-box"))
        fresh = _rec(40.0)
        path = _write(tmp_path, [other, other, fresh])
        report = check_trajectory(path)
        assert report.ok  # no comparable baselines -> gate skipped, not failed
        assert report.baseline_runs == 0
        assert any("different" in note for note in report.notes)

    def test_schema_change_refused(self, tmp_path):
        old = _rec(10.0, stamp=_stamp(schema=BENCH_SCHEMA - 1))
        path = _write(tmp_path, [old, old, _rec(40.0)])
        report = check_trajectory(path)
        assert report.ok and report.baseline_runs == 0

    def test_unstamped_fresh_record_skips(self, tmp_path):
        path = _write(tmp_path, [_rec(10.0), _rec(40.0, stamp=False)])
        report = check_trajectory(path)
        assert report.ok
        assert any("unstamped" in note for note in report.notes)

    def test_min_history_skips_thin_trajectories(self, tmp_path):
        path = _write(tmp_path, [_rec(10.0), _rec(40.0)])
        assert not check_trajectory(path, min_history=1).ok
        report = check_trajectory(path, min_history=2)
        assert report.ok
        assert any("gate skipped" in note for note in report.notes)

    def test_unreadable_file_fails(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        assert not check_trajectory(str(path)).ok
        assert not check_trajectory(str(tmp_path / "missing.json")).ok

    def test_empty_trajectory_passes_with_note(self, tmp_path):
        report = check_trajectory(_write(tmp_path, []))
        assert report.ok and report.notes

    def test_threshold_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            check_trajectory(_write(tmp_path, []), threshold=0.0)


class TestCliRegress:
    def test_exit_codes(self, tmp_path, capsys):
        from repro.tools.cli import main

        good = _write(tmp_path, [_rec(10.0), _rec(10.5)], "BENCH_good.json")
        bad = _write(tmp_path, [_rec(10.0), _rec(99.0)], "BENCH_bad.json")
        assert main(["regress", good]) == 0
        assert main(["regress", good, bad]) == 1
        out = capsys.readouterr().out
        assert "[ok]" in out and "[REGRESSION]" in out

    def test_loose_threshold_lets_noise_pass(self, tmp_path):
        from repro.tools.cli import main

        noisy = _write(tmp_path, [_rec(10.0), _rec(13.0)], "BENCH_noisy.json")
        assert main(["regress", noisy, "--threshold", "0.5"]) == 0
        assert main(["regress", noisy, "--threshold", "0.1"]) == 1
