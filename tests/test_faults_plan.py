"""Fault-plan unit tests: spec grammar, determinism, budgets, matching,
env activation, and the disabled-plan overhead bound."""

import random
import time

import pytest

from repro.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FAULTS_ENV_VAR,
    FatalFault,
    FaultPlan,
    FaultRule,
    InjectedFault,
    TransientFault,
    get_fault_plan,
    parse_fault_spec,
    set_fault_plan,
)
from repro.obs.metrics import MetricsRegistry, set_metrics


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("kernel.execute", "explode")

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("kernel.exec", "transient")

    def test_glob_site_allowed(self):
        rule = FaultRule("cache.*", "transient")
        assert rule.matches("cache.load", {})
        assert rule.matches("cache.store", {})
        assert not rule.matches("pool.checkout", {})

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("kernel.execute", "transient", p=1.5)

    def test_match_exact_and_alternatives(self):
        rule = FaultRule(
            "kernel.execute", "nan",
            match={"scheme": ("winograd", "winograd_rect"), "op": "Conv2D"},
        )
        assert rule.matches("kernel.execute", {"scheme": "winograd", "op": "Conv2D"})
        assert not rule.matches("kernel.execute", {"scheme": "sliding", "op": "Conv2D"})
        assert not rule.matches("kernel.execute", {"scheme": "winograd", "op": "MatMul"})

    def test_catalog_covers_all_kinds(self):
        assert set(FAULT_KINDS) == {
            "transient", "fatal", "delay", "nan", "corrupt", "torn"
        }
        assert "kernel.execute" in FAULT_SITES


class TestFire:
    def test_transient_and_fatal_raise(self):
        plan = FaultPlan([FaultRule("kernel.execute", "transient", times=1),
                          FaultRule("kernel.execute", "fatal", times=1)])
        with pytest.raises(TransientFault):
            plan.fire("kernel.execute")
        with pytest.raises(FatalFault):
            plan.fire("kernel.execute")
        assert plan.injected == 2

    def test_injected_fault_is_common_base(self):
        plan = FaultPlan([FaultRule("kernel.execute", "fatal")])
        with pytest.raises(InjectedFault):
            plan.fire("kernel.execute")

    def test_nan_returned_not_raised(self):
        plan = FaultPlan([FaultRule("kernel.execute", "nan", times=1)])
        fault = plan.fire("kernel.execute")
        assert fault is not None and fault.kind == "nan"
        assert plan.fire("kernel.execute") is None  # budget spent

    def test_times_budget_and_skip(self):
        plan = FaultPlan([FaultRule("pool.checkout", "transient", times=2, skip=1)])
        assert plan.fire("pool.checkout") is None  # skipped
        for _ in range(2):
            with pytest.raises(TransientFault):
                plan.fire("pool.checkout")
        assert plan.fire("pool.checkout") is None  # exhausted
        assert plan.injected == 2

    def test_probability_draws_are_seeded(self):
        def events(seed):
            plan = FaultPlan(
                [FaultRule("kernel.execute", "nan", p=0.5)], seed=seed
            )
            return [plan.fire("kernel.execute") is not None for _ in range(64)]

        first = events(3)
        assert events(3) == first            # same seed, same decisions
        assert events(4) != first            # different seed diverges
        assert 10 < sum(first) < 54          # actually probabilistic

    def test_no_cascading_when_armed_rule_declines(self):
        # The p<1 rule owns the site; a declined draw must not fall
        # through to the later always-fire rule.
        plan = FaultPlan([
            FaultRule("kernel.execute", "nan", p=0.0),
            FaultRule("kernel.execute", "fatal"),
        ])
        assert plan.fire("kernel.execute") is None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan([
            FaultRule("cache.load", "corrupt", times=1),
            FaultRule("cache.*", "transient"),
        ])
        assert plan.fire("cache.load").kind == "corrupt"
        with pytest.raises(TransientFault):
            plan.fire("cache.load")

    def test_match_filter_gates_firing(self):
        plan = FaultPlan([
            FaultRule("kernel.execute", "nan", match={"scheme": "winograd"}),
        ])
        assert plan.fire("kernel.execute", scheme="sliding") is None
        assert plan.fire("kernel.execute", scheme="winograd") is not None

    def test_delay_sleeps(self):
        plan = FaultPlan([FaultRule("pool.checkout", "delay", delay_ms=20, times=1)])
        start = time.perf_counter()
        fault = plan.fire("pool.checkout")
        elapsed_ms = (time.perf_counter() - start) * 1000
        assert fault.kind == "delay"
        assert elapsed_ms >= 15

    def test_counters_and_introspection(self):
        from repro.obs.metrics import get_metrics

        plan = FaultPlan([FaultRule("cache.load", "corrupt", times=2)])
        plan.fire("cache.load")
        plan.fire("cache.load")
        assert get_metrics().value("faults.injected") == 2
        assert get_metrics().value("faults.injected.corrupt") == 2
        assert plan.events() == [("cache.load", "corrupt")] * 2
        assert plan.site_counts() == {"cache.load": 2}
        assert "cache.load:corrupt fired 2/2" in plan.describe()


class TestDeterministicReplay:
    def test_same_seed_same_event_sequence(self):
        def storm(seed):
            plan = FaultPlan([
                FaultRule("kernel.execute", "transient", p=0.4, times=10),
                FaultRule("cache.load", "corrupt", p=0.3),
            ], seed=seed)
            for _ in range(50):
                try:
                    plan.fire("kernel.execute", op="Conv2D")
                except TransientFault:
                    pass
                plan.fire("cache.load")
            return plan.events()

        assert storm(11) == storm(11)
        assert storm(11) != storm(12)

    def test_per_site_rng_isolated(self):
        # Draws at one site must not perturb another site's sequence.
        lone = FaultPlan([FaultRule("cache.load", "corrupt", p=0.5)], seed=5)
        lone_events = [lone.fire("cache.load") is not None for _ in range(32)]

        mixed = FaultPlan([
            FaultRule("cache.load", "corrupt", p=0.5),
            FaultRule("pool.checkout", "delay", p=0.5, delay_ms=0),
        ], seed=5)
        mixed_events = []
        for _ in range(32):
            mixed.fire("pool.checkout")
            mixed_events.append(mixed.fire("cache.load") is not None)
        assert mixed_events == lone_events


class TestSpecParsing:
    def test_full_grammar(self):
        plan = parse_fault_spec(
            "seed=7;kernel.execute:transient@0.25x10+2~1.5,cache.*:corrupt x3"
        )
        assert plan.seed == 7
        assert len(plan.rules) == 2
        first, second = plan.rules
        assert (first.site, first.kind) == ("kernel.execute", "transient")
        assert (first.p, first.times, first.skip, first.delay_ms) == (0.25, 10, 2, 1.5)
        assert (second.site, second.kind, second.times) == ("cache.*", "corrupt", 3)

    def test_empty_clauses_ignored(self):
        plan = parse_fault_spec(" ;kernel.execute:fatal; ")
        assert len(plan.rules) == 1

    def test_missing_colon_rejected(self):
        with pytest.raises(ValueError, match="site:kind"):
            parse_fault_spec("kernel.execute")

    def test_dangling_modifier_rejected(self):
        with pytest.raises(ValueError, match="dangling"):
            parse_fault_spec("kernel.execute:transient@")

    def test_unknown_kind_propagates(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("kernel.execute:boom")


class TestGlobalPlan:
    def test_env_activation_and_reset(self, monkeypatch):
        previous = set_fault_plan(None)  # force re-resolution
        try:
            monkeypatch.setenv(FAULTS_ENV_VAR, "seed=9;pool.checkout:transient x1")
            plan = get_fault_plan()
            assert plan.enabled and plan.seed == 9
            assert get_fault_plan() is plan  # resolved once

            set_fault_plan(None)
            monkeypatch.delenv(FAULTS_ENV_VAR)
            assert not get_fault_plan().enabled  # default no-op
        finally:
            set_fault_plan(previous)

    def test_set_returns_previous(self):
        mine = FaultPlan([FaultRule("cache.load", "corrupt")])
        previous = set_fault_plan(mine)
        try:
            assert get_fault_plan() is mine
        finally:
            assert set_fault_plan(previous) is mine


class TestOverheadGuard:
    def test_disabled_plan_overhead_under_5_percent(self):
        """A disabled plan's per-site cost must stay under 5% of a
        small-model run loop.

        Structural pricing (like the disabled-tracer guard): a disabled
        plan's ``fire`` is one attribute check and a return; we price it
        directly, scale by the per-op fault points, and compare against
        the measured run time.  The session does even less — it never
        calls ``fire`` when resilience is off.
        """
        import numpy as np

        from repro.core import Session
        from repro.ir import GraphBuilder

        b = GraphBuilder("tiny", seed=0)
        x = b.input("data", (1, 3, 16, 16))
        x = b.conv(x, oc=8, kernel=3, activation="relu")
        x = b.conv(x, oc=8, kernel=1)
        x = b.fc(b.global_avg_pool(x), units=4)
        b.output(b.softmax(x))
        session = Session(b.finish())
        feeds = {"data": np.zeros((1, 3, 16, 16), np.float32)}
        session.run(feeds)  # warm-up
        repeats = 10
        start = time.perf_counter()
        for _ in range(repeats):
            session.run(feeds)
        run_ms = (time.perf_counter() - start) * 1000.0 / repeats

        plan = FaultPlan()
        assert not plan.enabled
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            plan.fire("backend.dispatch")
            plan.fire("kernel.execute")
        per_op_ms = (time.perf_counter() - start) * 1000.0 / calls

        n_ops = len(session._order)
        overhead_ms = per_op_ms * n_ops
        assert overhead_ms < 0.05 * run_ms, (
            f"disabled fault plan would add {overhead_ms:.4f} ms to a "
            f"{run_ms:.3f} ms run ({overhead_ms / run_ms * 100:.1f}%)"
        )
