"""Static concurrency lint (C0xx): planted defects, exemptions, self-lint.

Each rule gets a minimal planted source that must trigger it and a
minimal corrected source that must not — the lint is only trustworthy as
a merge gate (``scripts/check.sh``) if both directions hold.  The
self-lint tests then run the full rule family over ``src/repro`` itself,
which must stay clean.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import C_RULES, Severity, lint_source_text, lint_source_tree

pytestmark = pytest.mark.sanitize


def lint(source):
    return lint_source_text(textwrap.dedent(source), "planted.py")


def rules(diags):
    return [d.rule for d in diags]


class TestC001LockOrder:
    def test_inverted_nesting_across_methods(self):
        diags = lint(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._alock = threading.Lock()
                    self._block = threading.Lock()

                def forward(self):
                    with self._alock:
                        with self._block:
                            pass

                def backward(self):
                    with self._block:
                        with self._alock:
                            pass
            """
        )
        assert "C001" in rules(diags)
        c001 = next(d for d in diags if d.rule == "C001")
        assert c001.severity is Severity.ERROR  # a real deadlock risk

    def test_consistent_nesting_is_clean(self):
        diags = lint(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._alock = threading.Lock()
                    self._block = threading.Lock()

                def forward(self):
                    with self._alock:
                        with self._block:
                            pass

                def backward(self):
                    with self._alock:
                        with self._block:
                            pass
            """
        )
        assert "C001" not in rules(diags)

    def test_cross_module_cycle_via_tree_merge(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text(textwrap.dedent(
            """
            import threading

            class A:
                def __init__(self):
                    self.red_lock = threading.Lock()
                    self.blue_lock = threading.Lock()

                def go(self):
                    with self.red_lock:
                        with self.blue_lock:
                            pass
            """
        ))
        (pkg / "b.py").write_text(textwrap.dedent(
            """
            import threading

            class A:
                def __init__(self):
                    self.red_lock = threading.Lock()
                    self.blue_lock = threading.Lock()

                def back(self):
                    with self.blue_lock:
                        with self.red_lock:
                            pass
            """
        ))
        diags = lint_source_tree(pkg)
        assert "C001" in rules(diags)


class TestC002MixedMutation:
    PLANTED = """
        import threading

        class Batcher:
            def __init__(self):
                self._lock = threading.Lock()
                self._pending = []

            def submit(self, item):
                with self._lock:
                    self._pending.append(item)

            def drain(self):
                self._pending.clear()
        """

    def test_inside_and_outside_mutation_flagged(self):
        diags = lint(self.PLANTED)
        assert "C002" in rules(diags)
        c002 = next(d for d in diags if d.rule == "C002")
        assert "_pending" in c002.message and "drain" in c002.message

    def test_always_locked_is_clean(self):
        diags = lint(
            """
            import threading

            class Batcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pending = []

                def submit(self, item):
                    with self._lock:
                        self._pending.append(item)

                def drain(self):
                    with self._lock:
                        self._pending.clear()
            """
        )
        assert "C002" not in rules(diags)

    def test_init_is_exempt(self):
        # Construction happens-before every other access; the planted
        # source's only unlocked writes are in __init__.
        diags = lint(
            """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                    self._items.append(0)

                def put(self, x):
                    with self._lock:
                        self._items.append(x)
            """
        )
        assert "C002" not in rules(diags)

    def test_lock_held_docstring_exempts_helper(self):
        diags = lint(
            """
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._live = {}

                def drop(self, k):
                    with self._lock:
                        self._forget(k)

                def _forget(self, k):
                    \"\"\"Drop one key.  Called with the lock held.\"\"\"
                    self._live.pop(k, None)

                def put(self, k, v):
                    with self._lock:
                        self._live.update({k: v})
            """
        )
        assert "C002" not in rules(diags)

    def test_suppression_comment(self):
        suppressed = self.PLANTED.replace(
            "self._pending.clear()",
            "self._pending.clear()  # sanitize: single-thread",
        )
        assert "C002" not in rules(lint(suppressed))


class TestC003NestedAcquire:
    def test_nested_same_lock_flagged(self):
        diags = lint(
            """
            import threading

            class Nested:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert "C003" in rules(diags)

    def test_rlock_reentry_is_clean(self):
        diags = lint(
            """
            import threading

            class Nested:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert "C003" not in rules(diags)

    def test_condition_aliases_its_lock(self):
        # Holding the condition IS holding the wrapped lock: re-entering
        # via the other name is the same non-reentrant deadlock.
        diags = lint(
            """
            import threading

            class CondUser:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)

                def bad(self):
                    with self._cond:
                        with self._lock:
                            pass
            """
        )
        assert "C003" in rules(diags)


class TestC004BlockingUnderLock:
    def test_sleep_and_join_under_lock_flagged(self):
        diags = lint(
            """
            import threading
            import time

            class Slow:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._thread = threading.Thread(target=print)

                def nap(self):
                    with self._lock:
                        time.sleep(1.0)

                def stop(self):
                    with self._lock:
                        self._thread.join()
            """
        )
        assert rules(diags).count("C004") == 2

    def test_condition_wait_is_exempt(self):
        diags = lint(
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._cond = threading.Condition()

                def hold(self):
                    with self._cond:
                        self._cond.wait(1.0)
            """
        )
        assert "C004" not in rules(diags)

    def test_blocking_outside_lock_is_clean(self):
        diags = lint(
            """
            import threading
            import time

            class Fine:
                def __init__(self):
                    self._lock = threading.Lock()

                def nap(self):
                    time.sleep(0.1)
                    with self._lock:
                        pass
            """
        )
        assert "C004" not in rules(diags)


class TestC005BareAcquire:
    def test_bare_acquire_flagged(self):
        diags = lint(
            """
            import threading

            class Leaky:
                def __init__(self):
                    self._lock = threading.Lock()

                def grab(self):
                    self._lock.acquire()
                    self.work()
                    self._lock.release()
            """
        )
        assert "C005" in rules(diags)

    def test_try_finally_release_is_clean(self):
        diags = lint(
            """
            import threading

            class Careful:
                def __init__(self):
                    self._lock = threading.Lock()

                def grab(self):
                    self._lock.acquire()
                    try:
                        self.work()
                    finally:
                        self._lock.release()
            """
        )
        assert "C005" not in rules(diags)

    def test_acquire_with_args_is_not_a_lock_acquire(self):
        # Recorder-style acquire(tid, name) methods must not trip C005.
        diags = lint(
            """
            import threading

            class Recorder:
                def __init__(self):
                    self.order_lock = threading.Lock()
                    self.tracker = object()

                def note(self, tid):
                    self.tracker.acquire(tid, "name")
            """
        )
        assert "C005" not in rules(diags)


class TestCatalog:
    def test_rule_catalog_is_complete(self):
        assert set(C_RULES) == {"C001", "C002", "C003", "C004", "C005"}
        for rule, desc in C_RULES.items():
            assert desc  # README catalog is generated from these

    def test_syntax_error_reports_c000_not_crash(self):
        diags = lint_source_text("def broken(:\n", "broken.py")
        assert rules(diags) == ["C000"]


@pytest.mark.lint_self
class TestSelfLint:
    """src/repro must pass its own concurrency lint — the check.sh gate."""

    def test_source_tree_has_no_c0xx_findings(self):
        root = Path(__file__).resolve().parents[1] / "src" / "repro"
        assert root.is_dir()
        diags = lint_source_tree(root)
        assert diags == [], "\n".join(
            f"{d.rule} {d.node}: {d.message}" for d in diags
        )

    def test_cli_sanitize_static_only_passes(self, capsys):
        from repro.tools.cli import main

        rc = main(["sanitize", "--static-only", "--strict"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "no problems" in out
