"""Property-based tests for the memory-plan sanitizer.

Strategy: start from a plan the greedy planner proved out, corrupt exactly
one thing (shift an offset, shrink a lifetime, lie about a size...), and
assert the sanitizer catches it — naming the exact tensors involved.  A
hypothesis property also cross-checks the sanitizer's verdict against the
brute-force O(n^2) ``MemoryPlan.validate`` oracle under random offset
shifts.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_memory_plan, derive_lifetimes
from repro.core.memory import ALIGNMENT, Arena, MemoryPlan, plan_memory
from repro.core.session import Session, SessionConfig
from repro.ir import GraphBuilder
from repro.ir.graph import GraphError
from repro.models import build_model


def branchy_graph():
    """A small CNN with a residual branch — long, overlapping lifetimes."""
    b = GraphBuilder("branchy", seed=11)
    x = b.input("in", (1, 8, 16, 16))
    left = b.conv(x, oc=8, kernel=3, pad_mode="same", activation="relu")
    right = b.conv(x, oc=8, kernel=1, pad_mode="same")
    x = b.add(left, right)
    x = b.conv(x, oc=16, kernel=3, stride=2, pad_mode="same", activation="relu")
    b.output(b.softmax(b.fc(b.global_avg_pool(x), units=10)))
    return b.finish()


GRAPH = branchy_graph()
PLAN = plan_memory(GRAPH)
DERIVED = derive_lifetimes(GRAPH)
CO_LIVE_PAIRS = sorted(
    (a.name, c.name)
    for a in DERIVED.values()
    for c in DERIVED.values()
    if a.name < c.name and a.overlaps(c)
)


def mutated(plan, **changes):
    """A deep-enough copy of ``plan`` with ``changes`` applied."""
    return dataclasses.replace(
        plan,
        offsets=dict(plan.offsets),
        lifetimes=dict(plan.lifetimes),
        **changes,
    )


class TestValidPlans:
    def test_sanitizer_accepts_the_planner_output(self):
        report = check_memory_plan(GRAPH, PLAN)
        assert report.ok, [d.format() for d in report.diagnostics]
        assert report.checked_tensors == len(DERIVED) > 0
        assert report.checked_pairs == len(CO_LIVE_PAIRS) > 0
        report.raise_if_failed()  # must not raise

    def test_statistics_are_consistent(self):
        report = check_memory_plan(GRAPH, PLAN)
        assert 0 < report.peak_bytes <= report.arena_bytes == PLAN.arena_bytes
        assert report.peak_bytes == PLAN.peak_bytes
        assert report.utilization == pytest.approx(PLAN.utilization())
        assert 0 < report.utilization <= 1.0
        assert report.wasted_bytes == PLAN.arena_bytes - PLAN.peak_bytes
        assert "tensors" in report.summary()

    def test_derived_lifetimes_match_planner(self):
        # Independent derivation must agree with the planner on a sound graph.
        assert set(DERIVED) == set(PLAN.lifetimes)
        for name, interval in DERIVED.items():
            planned = PLAN.lifetimes[name]
            assert (interval.first, interval.last, interval.nbytes) == (
                planned.first, planned.last, planned.nbytes,
            )

    @pytest.mark.lint_self
    @pytest.mark.parametrize("name", [
        "mobilenet_v1", "resnet18", "squeezenet_v1.1",
        "tiny_transformer", "lstm_classifier",
    ])
    def test_builtin_model_plans_are_sound(self, name):
        graph = build_model(name, input_size=64) if "net" in name else build_model(name)
        report = check_memory_plan(graph, plan_memory(graph))
        assert report.ok, [d.format() for d in report.diagnostics]


class TestCorruptions:
    @given(pair=st.sampled_from(CO_LIVE_PAIRS))
    @settings(max_examples=30, deadline=None)
    def test_aliasing_two_live_tensors_is_caught_naming_the_pair(self, pair):
        victim, squatter = pair
        plan = mutated(PLAN)
        plan.offsets[squatter] = plan.offsets[victim]
        report = check_memory_plan(GRAPH, plan)
        assert not report.ok
        overlaps = [d for d in report.diagnostics if d.rule == "mem-overlap"]
        assert any(
            f"{victim!r}" in d.message and f"{squatter!r}" in d.message
            for d in overlaps
        ), [d.message for d in overlaps]

    @given(
        name=st.sampled_from(sorted(PLAN.offsets)),
        shift=st.integers(min_value=-8, max_value=8).filter(lambda s: s != 0),
    )
    @settings(max_examples=60, deadline=None)
    def test_verdict_matches_brute_force_oracle_under_shifts(self, name, shift):
        plan = mutated(PLAN)
        plan.offsets[name] = max(0, plan.offsets[name] + shift * ALIGNMENT)
        report = check_memory_plan(GRAPH, plan)
        try:
            plan.validate()
            oracle_ok = all(
                off + plan.lifetimes[n].nbytes <= plan.arena_bytes
                for n, off in plan.offsets.items()
            )
        except AssertionError:
            oracle_ok = False
        assert report.ok == oracle_ok, [d.format() for d in report.diagnostics]

    def test_misaligned_offset(self):
        name = max(PLAN.offsets, key=PLAN.offsets.get)
        plan = mutated(PLAN)
        plan.offsets[name] += 1
        report = check_memory_plan(GRAPH, plan)
        rules = {d.rule for d in report.diagnostics}
        assert "mem-misaligned" in rules

    def test_out_of_bounds_offset(self):
        name = next(iter(PLAN.offsets))
        plan = mutated(PLAN)
        plan.offsets[name] = plan.arena_bytes  # aligned, but past the end
        report = check_memory_plan(GRAPH, plan)
        assert any(d.rule == "mem-out-of-bounds" and d.tensor == name
                   for d in report.diagnostics)

    def test_missing_offset(self):
        name = next(iter(PLAN.offsets))
        plan = mutated(PLAN)
        del plan.offsets[name]
        report = check_memory_plan(GRAPH, plan)
        assert any(d.rule == "mem-unplanned" and d.tensor == name
                   for d in report.diagnostics)

    def test_shrunken_lifetime(self):
        # Pick a tensor that is genuinely consumed after it is produced.
        name = next(n for n, iv in DERIVED.items() if iv.last > iv.first)
        plan = mutated(PLAN)
        old = plan.lifetimes[name]
        plan.lifetimes[name] = dataclasses.replace(old, last=old.first)
        report = check_memory_plan(GRAPH, plan)
        assert any(d.rule == "mem-lifetime" and d.tensor == name
                   for d in report.diagnostics)

    def test_wrong_size(self):
        name = next(iter(PLAN.offsets))
        plan = mutated(PLAN)
        old = plan.lifetimes[name]
        plan.lifetimes[name] = dataclasses.replace(old, nbytes=old.nbytes // 2)
        report = check_memory_plan(GRAPH, plan)
        assert any(d.rule == "mem-size" and d.tensor == name
                   for d in report.diagnostics)

    def test_raise_if_failed_carries_diagnostics(self):
        victim, squatter = CO_LIVE_PAIRS[0]
        plan = mutated(PLAN)
        plan.offsets[squatter] = plan.offsets[victim]
        report = check_memory_plan(GRAPH, plan)
        with pytest.raises(GraphError, match="overlap") as exc_info:
            report.raise_if_failed()
        assert exc_info.value.diagnostics == report.diagnostics


class TestParanoidMode:
    def test_paranoid_session_runs_clean_model(self):
        session = Session(GRAPH, SessionConfig(paranoid=True))
        import numpy as np

        out = session.run({"in": np.random.default_rng(0)
                          .standard_normal((1, 8, 16, 16)).astype(np.float32)})
        assert set(out) == set(GRAPH.outputs)

    def test_paranoid_arena_rejects_misaligned_view(self):
        plan = mutated(PLAN)
        name = max(PLAN.offsets, key=PLAN.offsets.get)
        plan.offsets[name] += 1
        arena = Arena(plan, paranoid=True)
        with pytest.raises(GraphError, match="aligned"):
            arena.view(GRAPH.desc(name))

    def test_paranoid_arena_rejects_out_of_bounds_view(self):
        plan = mutated(PLAN, arena_bytes=ALIGNMENT)
        name = max(PLAN.offsets, key=PLAN.offsets.get)
        arena = Arena(plan, paranoid=True)
        with pytest.raises(GraphError, match="outside arena"):
            arena.view(GRAPH.desc(name))

    def test_default_arena_stays_fast_path(self):
        # Without paranoid mode a bad offset is not policed by view().
        arena = Arena(PLAN, paranoid=False)
        name = next(iter(PLAN.offsets))
        view = arena.view(GRAPH.desc(name))
        assert view.shape == GRAPH.desc(name).shape
