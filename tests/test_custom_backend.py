"""Tests for the backend extension point: a user-written NPU-style backend.

The paper claims the Backend abstraction is "scalable enough for users to
integrate new backends such as NPU, FPGA".  This test implements exactly
that: an `NpuBackend` subclassing the public ABC, supporting only
convolution-family ops at very high modeled throughput, plugged into a
Session as an *instance* — with automatic CPU fallback for everything else.
"""

from typing import List, Optional, Sequence

import numpy as np
import pytest

from repro.backends import Backend, BackendError, Execution, build_runner
from repro.core import Session, SessionConfig
from repro.devices import get_device
from repro.ir import GraphBuilder, Op
from repro.sim import VirtualClock

RNG = np.random.default_rng(88)

#: The NPU accelerates dense conv/matmul ops only (typical for real NPUs).
NPU_OPS = {Op.CONV2D, Op.DEPTHWISE_CONV2D, Op.FULLY_CONNECTED, Op.MATMUL}
NPU_FLOPS = 200e9  # modeled: far beyond any mobile CPU/GPU
NPU_DISPATCH_MS = 0.02


class NpuExecution(Execution):
    def __init__(self, backend, node, runner):
        super().__init__(backend, node)
        self.runner = runner

    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        self.backend.clock.advance(
            self.runner.muls / NPU_FLOPS * 1000.0 + NPU_DISPATCH_MS
        )
        return self.runner.fn(inputs)


class NpuBackend(Backend):
    """A fictional NPU: real numerics, modeled 200-GFLOPS timing."""

    forward_type = "npu"

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        super().__init__()
        self.clock = clock or VirtualClock()

    def supports(self, op_type: str) -> bool:
        return op_type in NPU_OPS

    def on_create(self, node, graph, scheme=None) -> Execution:
        if not self.supports(node.op_type):
            raise BackendError(f"npu: unsupported op {node.op_type!r}")
        return NpuExecution(self, node, build_runner(node, graph, scheme))


def build_net():
    b = GraphBuilder("npu_net", seed=5)
    x = b.input("in", (1, 8, 32, 32))
    x = b.conv(x, oc=16, kernel=3, activation="relu")
    x = b.batch_norm(x)          # NOT on the NPU -> CPU fallback
    x = b.conv(x, oc=16, kernel=1)
    x = b.max_pool(x, 2)         # NOT on the NPU
    x = b.fc(b.global_avg_pool(x), units=6)
    b.output(b.softmax(x))
    return b.finish()


class TestCustomBackend:
    def test_session_accepts_backend_instance(self):
        session = Session(build_net(), SessionConfig(backend=NpuBackend()))
        assert session.backend_kind == "npu"

    def test_hybrid_placement_with_fallback(self):
        session = Session(build_net(), SessionConfig(backend=NpuBackend()))
        placement = session.placement_summary()
        assert placement["npu"] == 3          # two convs + FC
        assert placement["cpu"] > 0           # bn/pool/gap/softmax

    def test_numerics_match_cpu(self):
        net = build_net()
        feed = {"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)}
        want = list(Session(net).run(feed).values())[0]
        got = list(Session(net, SessionConfig(backend=NpuBackend())).run(feed).values())[0]
        np.testing.assert_allclose(want, got, atol=1e-5)

    def test_npu_virtual_time_accumulates(self):
        npu = NpuBackend()
        session = Session(build_net(), SessionConfig(backend=npu))
        feed = {"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)}
        session.run(feed)
        assert npu.clock.now_ms > 0
        # 3 dispatches at >= NPU_DISPATCH_MS each
        assert npu.clock.now_ms >= 3 * NPU_DISPATCH_MS

    def test_profiler_attributes_backends(self):
        session = Session(build_net(), SessionConfig(backend=NpuBackend()))
        feed = {"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)}
        _, profile = session.run_profiled(feed)
        backends = {p.op_type: p.backend for p in profile}
        assert backends[Op.CONV2D] == "npu"
        assert backends[Op.BATCH_NORM] == "cpu"

    def test_sim_cpu_fallback_with_device(self):
        session = Session(
            build_net(),
            SessionConfig(backend=NpuBackend(), device=get_device("Mate20")),
        )
        assert session.placement_summary().get("sim_cpu", 0) > 0

    def test_backend_rejects_unsupported_directly(self):
        net = build_net()
        npu = NpuBackend()
        bn = next(n for n in net.nodes if n.op_type == Op.BATCH_NORM)
        with pytest.raises(BackendError, match="unsupported"):
            npu.on_create(bn, net)

    def test_buffer_management_inherited(self):
        """The ABC's default buffer management works for subclasses."""
        from repro.backends import StorageType
        from repro.ir import TensorDesc

        npu = NpuBackend()
        desc = TensorDesc("t", (2, 3))
        assert npu.on_acquire_buffer(desc, StorageType.DYNAMIC)
        assert npu.buffer("t").shape == (2, 3)
        assert npu.on_release_buffer(desc, StorageType.DYNAMIC)
        with pytest.raises(BackendError, match="no buffer"):
            npu.buffer("t")
