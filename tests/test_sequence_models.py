"""Tests for sequence ops (Transpose/Gather/LayerNorm/GELU/LSTM) and the
Transformer / LSTM zoo models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Session, SessionConfig, node_muls
from repro.core.reference import execute_reference
from repro.devices import get_device
from repro.ir import DataType, Graph, GraphBuilder, GraphError, Op, dumps, loads
from repro.kernels import gelu, layer_norm, lstm_forward
from repro.models import lstm_classifier, tiny_transformer

RNG = np.random.default_rng(55)


class TestSequenceKernels:
    def test_gelu_known_values(self):
        x = np.array([-10.0, 0.0, 10.0])
        got = gelu(x)
        np.testing.assert_allclose(got, [0.0, 0.0, 10.0], atol=1e-3)
        # GELU(1) ~ 0.8412
        assert gelu(np.array([1.0]))[0] == pytest.approx(0.8412, abs=1e-3)

    def test_gelu_monotone_near_origin(self):
        x = np.linspace(-0.5, 3.0, 100)
        assert (np.diff(gelu(x)) > 0).all()

    def test_layer_norm_zero_mean_unit_var(self):
        x = RNG.standard_normal((2, 5, 16)).astype(np.float32) * 7 + 3
        out = layer_norm(x, np.ones(16, np.float32), np.zeros(16, np.float32))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine(self):
        x = RNG.standard_normal((1, 4, 8)).astype(np.float32)
        gamma = np.full(8, 2.0, np.float32)
        beta = np.full(8, 5.0, np.float32)
        out = layer_norm(x, gamma, beta)
        np.testing.assert_allclose(out.mean(axis=-1), 5.0, atol=1e-4)

    def test_lstm_matches_step_by_step_reference(self):
        n, t, features, hidden = 2, 5, 3, 4
        x = RNG.standard_normal((n, t, features)).astype(np.float64)
        w_ih = RNG.standard_normal((4 * hidden, features))
        w_hh = RNG.standard_normal((4 * hidden, hidden))
        bias = RNG.standard_normal(4 * hidden)

        def sigmoid(v):
            return 1 / (1 + np.exp(-v))

        h = np.zeros((n, hidden))
        c = np.zeros((n, hidden))
        for step in range(t):
            gates = x[:, step] @ w_ih.T + h @ w_hh.T + bias
            i, f, g, o = (gates[:, k * hidden:(k + 1) * hidden] for k in range(4))
            c = sigmoid(f) * c + sigmoid(i) * np.tanh(g)
            h = sigmoid(o) * np.tanh(c)
        got = lstm_forward(x, w_ih, w_hh, bias)
        np.testing.assert_allclose(got, h, atol=1e-10)

    def test_lstm_return_sequences(self):
        x = RNG.standard_normal((1, 6, 3)).astype(np.float32)
        w_ih = RNG.standard_normal((16, 3)).astype(np.float32)
        w_hh = RNG.standard_normal((16, 4)).astype(np.float32)
        seq = lstm_forward(x, w_ih, w_hh, return_sequences=True)
        last = lstm_forward(x, w_ih, w_hh, return_sequences=False)
        assert seq.shape == (1, 6, 4)
        np.testing.assert_allclose(seq[:, -1], last, atol=1e-6)

    def test_lstm_bad_weights(self):
        x = RNG.standard_normal((1, 2, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="w_ih"):
            lstm_forward(x, np.zeros((7, 3), np.float32), np.zeros((8, 2), np.float32))

    def test_lstm_state_saturates_bounded(self):
        """Hidden state stays in tanh's range regardless of input scale."""
        x = RNG.standard_normal((1, 20, 4)).astype(np.float32) * 100
        w_ih = RNG.standard_normal((32, 4)).astype(np.float32)
        w_hh = RNG.standard_normal((32, 8)).astype(np.float32)
        out = lstm_forward(x, w_ih, w_hh, return_sequences=True)
        assert np.isfinite(out).all()
        assert np.abs(out).max() <= 1.0 + 1e-6


class TestSequenceOpsInGraph:
    def test_transpose_op(self):
        b = GraphBuilder()
        x = b.input("x", (2, 3, 4))
        y = b.transpose(x, (2, 0, 1))
        b.output(y)
        g = b.finish()
        assert g.desc(y).shape == (4, 2, 3)
        data = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        out = execute_reference(g, {"x": data})[y]
        np.testing.assert_array_equal(out, data.transpose(2, 0, 1))

    def test_transpose_bad_perm(self):
        b = GraphBuilder()
        x = b.input("x", (2, 3))
        y = b.transpose(x, (0, 0))  # build-time inference defers the error
        b.output(y)
        with pytest.raises(GraphError, match="permutation"):
            b.finish()

    def test_gather_embedding_lookup(self):
        b = GraphBuilder()
        table = b.constant(np.arange(12, dtype=np.float32).reshape(4, 3))
        idx = b.input("idx", (2, 2), DataType.INT32)
        y = b.gather(table, idx, axis=0)
        b.output(y)
        g = b.finish()
        assert g.desc(y).shape == (2, 2, 3)
        out = execute_reference(g, {"idx": np.array([[0, 3], [1, 1]], np.int32)})[y]
        np.testing.assert_array_equal(out[0, 1], [9, 10, 11])

    def test_layer_norm_op_shape_check(self):
        g = Graph()
        g.add_input("x", (1, 4, 8))
        g.add_constant("gamma", np.ones(5, np.float32))  # wrong size
        g.add_constant("beta", np.zeros(8, np.float32))
        with pytest.raises(GraphError, match="gamma"):
            g.add_node(Op.LAYER_NORM, ["x", "gamma", "beta"], ["y"])
            from repro.ir import infer_shapes
            infer_shapes(g)

    def test_lstm_op_muls(self):
        b = GraphBuilder()
        x = b.input("x", (2, 10, 8))
        y = b.lstm(x, hidden_size=16)
        b.output(y)
        g = b.finish()
        node = next(n for n in g.nodes if n.op_type == Op.LSTM)
        assert node_muls(node, g) == 2 * 10 * 4 * 16 * (8 + 16)

    def test_lstm_rejects_2d_input(self):
        g = Graph()
        g.add_input("x", (2, 8))
        g.add_constant("w_ih", np.zeros((16, 8), np.float32))
        g.add_constant("w_hh", np.zeros((16, 4), np.float32))
        with pytest.raises(GraphError, match="N, T, features"):
            g.add_node(Op.LSTM, ["x", "w_ih", "w_hh"], ["y"], {"hidden_size": 4})
            from repro.ir import infer_shapes
            infer_shapes(g)


class TestTransformer:
    @pytest.fixture(scope="class")
    def net(self):
        return tiny_transformer(vocab=200, seq_len=16, d_model=32, heads=2,
                                layers=2, classes=4, seed=1)

    def test_output_is_distribution(self, net):
        session = Session(net)
        tokens = RNG.integers(0, 200, (1, 16)).astype(np.int32)
        probs = list(session.run({"tokens": tokens}).values())[0]
        assert probs.shape == (1, 4)
        assert probs.sum() == pytest.approx(1.0, abs=1e-4)

    def test_op_inventory(self, net):
        hist = net.op_histogram()
        assert hist[Op.GATHER] == 1
        assert hist[Op.LAYER_NORM] == 5  # 2 per layer + final
        assert hist[Op.GELU] == 2
        assert hist[Op.SOFTMAX] == 3     # 2 attention + classifier
        assert hist[Op.MATMUL] == 2 * (4 + 2 + 2)  # qkv+out, scores+ctx, ffn x2

    def test_permutation_of_tokens_changes_output(self, net):
        session = Session(net)
        tokens = RNG.integers(0, 200, (1, 16)).astype(np.int32)
        a = list(session.run({"tokens": tokens}).values())[0]
        b = list(session.run({"tokens": tokens[:, ::-1].copy()}).values())[0]
        assert not np.allclose(a, b)  # positional embeddings break symmetry

    def test_serialization_round_trip(self, net):
        g2 = loads(dumps(net))
        tokens = RNG.integers(0, 200, (1, 16)).astype(np.int32)
        a = execute_reference(net, {"tokens": tokens})[net.outputs[0]]
        b2 = execute_reference(g2, {"tokens": tokens})[g2.outputs[0]]
        np.testing.assert_allclose(a, b2, atol=1e-6)

    def test_gpu_session_falls_back_for_sequence_ops(self, net):
        """Sequence ops are CPU-only: hybrid scheduling must kick in and the
        result must match the pure-CPU one."""
        session = Session(
            net, SessionConfig(backend="vulkan", device=get_device("MI6"))
        )
        placement = session.placement_summary()
        assert placement.get("sim_cpu", 0) > 0     # LN/Gather/... on CPU
        assert placement.get("vulkan", 0) > 0      # MatMul/Softmax on GPU
        tokens = RNG.integers(0, 200, (1, 16)).astype(np.int32)
        got = list(session.run({"tokens": tokens}).values())[0]
        want = list(Session(net).run({"tokens": tokens}).values())[0]
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_d_model_heads_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            tiny_transformer(d_model=30, heads=4)

    @given(seq=st.integers(4, 24), heads=st.sampled_from([1, 2, 4]))
    @settings(max_examples=5, deadline=None)
    def test_property_any_geometry_runs(self, seq, heads):
        net = tiny_transformer(vocab=50, seq_len=seq, d_model=16 * heads,
                               heads=heads, layers=1, classes=3)
        tokens = RNG.integers(0, 50, (1, seq)).astype(np.int32)
        probs = list(Session(net).run({"tokens": tokens}).values())[0]
        assert probs.sum() == pytest.approx(1.0, abs=1e-4)


class TestLstmClassifier:
    def test_end_to_end(self):
        net = lstm_classifier(vocab=100, seq_len=12, d_model=16, hidden=24, classes=3)
        session = Session(net)
        tokens = RNG.integers(0, 100, (1, 12)).astype(np.int32)
        probs = list(session.run({"tokens": tokens}).values())[0]
        assert probs.shape == (1, 3)
        assert probs.sum() == pytest.approx(1.0, abs=1e-4)

    def test_lstm_dominates_compute(self):
        net = lstm_classifier(vocab=100, seq_len=32, d_model=32, hidden=64, classes=3)
        muls = {n.op_type: node_muls(n, net) for n in net.nodes}
        assert muls[Op.LSTM] > sum(v for k, v in muls.items() if k != Op.LSTM)

    def test_latency_sim_handles_sequence_models(self):
        from repro.baselines import ENGINES
        from repro.sim import estimate_latency

        net = lstm_classifier(vocab=100, seq_len=32, d_model=32, hidden=64)
        est = estimate_latency(net, ENGINES["MNN"], get_device("Mate20"), "cpu", 4)
        assert est.total_ms > 0
        lstm_ms = [o.ms for o in est.per_op if o.op_type == Op.LSTM]
        assert lstm_ms and lstm_ms[0] > 0
