"""Tests for memory planning and the pre-allocated arena (Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Arena, compute_lifetimes, plan_memory
from repro.core.memory import ALIGNMENT
from repro.ir import GraphBuilder


def chain_graph(depth=6, hw=16, seed=0):
    b = GraphBuilder("chain", seed=seed)
    x = b.input("in", (1, 8, hw, hw))
    for _ in range(depth):
        x = b.conv(x, oc=8, kernel=3, activation="relu")
    b.output(x)
    return b.finish()


def diamond_graph():
    b = GraphBuilder("diamond", seed=0)
    x = b.input("in", (1, 8, 16, 16))
    left = b.conv(x, oc=8, kernel=3)
    right = b.conv(x, oc=8, kernel=1)
    out = b.add(left, right)
    b.output(out)
    return b.finish()


class TestLifetimes:
    def test_chain_lifetimes_are_short(self):
        g = chain_graph(4)
        order = g.toposort()
        lifetimes = compute_lifetimes(g, order)
        # every intermediate dies one step after it is born, except the output
        for name, life in lifetimes.items():
            if name in g.outputs:
                assert life.last == len(order)
            else:
                assert life.last - life.first == 1

    def test_diamond_input_branch_lives_until_both_uses(self):
        g = diamond_graph()
        order = g.toposort()
        lifetimes = compute_lifetimes(g, order)
        conv_left = order[0].outputs[0]
        add_step = next(i for i, n in enumerate(order) if n.op_type == "Add")
        assert lifetimes[conv_left].last == add_step

    def test_inputs_and_constants_excluded(self):
        g = chain_graph(2)
        lifetimes = compute_lifetimes(g, g.toposort())
        assert "in" not in lifetimes
        for name in g.constants:
            assert name not in lifetimes


class TestPlanMemory:
    def test_chain_reuses_two_slots(self):
        g = chain_graph(8)
        plan = plan_memory(g)
        plan.validate()
        # a pure chain needs at most ~2 live buffers; reuse must be substantial
        assert plan.reuse_ratio > 2.0

    def test_plan_is_sound(self):
        for builder in (chain_graph, diamond_graph):
            plan = plan_memory(builder())
            plan.validate()

    def test_offsets_are_aligned(self):
        plan = plan_memory(chain_graph(5))
        for offset in plan.offsets.values():
            assert offset % ALIGNMENT == 0

    def test_arena_never_exceeds_naive_total(self):
        plan = plan_memory(diamond_graph())
        # alignment may add a little slack per tensor, bounded here
        slack = ALIGNMENT * len(plan.offsets)
        assert plan.arena_bytes <= plan.total_tensor_bytes + slack

    @given(depth=st.integers(1, 10), hw=st.integers(4, 24), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_plans_always_sound(self, depth, hw, seed):
        plan = plan_memory(chain_graph(depth, hw, seed))
        plan.validate()

    def test_empty_graph(self):
        b = GraphBuilder("empty")
        x = b.input("in", (1, 3, 4, 4))
        b.output(b.relu(x))
        plan = plan_memory(b.finish())
        plan.validate()
        assert plan.arena_bytes >= 3 * 16 * 4


class TestArena:
    def test_views_have_planned_shapes(self):
        g = chain_graph(3)
        plan = plan_memory(g)
        arena = Arena(plan)
        for name in plan.offsets:
            view = arena.view(g.desc(name))
            assert view.shape == g.desc(name).shape
            view[:] = 1.0  # writable

    def test_disjoint_live_views_do_not_alias(self):
        g = diamond_graph()
        plan = plan_memory(g)
        arena = Arena(plan)
        order = g.toposort()
        left, right = order[0].outputs[0], order[1].outputs[0]
        view_l = arena.view(g.desc(left))
        view_r = arena.view(g.desc(right))
        view_l[:] = 7.0
        view_r[:] = 9.0
        assert (view_l == 7.0).all()  # writing right did not clobber left

    def test_unplanned_tensor_raises(self):
        plan = plan_memory(chain_graph(2))
        arena = Arena(plan)
        from repro.ir import TensorDesc
        with pytest.raises(KeyError):
            arena.view(TensorDesc("ghost", (1, 1)))


class TestExtentFreeListGuards:
    """Typed misuse guards on the shared free list (KV arena + sanitizer).

    Every guard raises :class:`FreeListError` — a ``ValueError`` subclass
    carrying a stable rule id and an ``as_diagnostic()`` conversion, so
    allocator misuse surfaces through the same diagnostics pipeline as
    the static lint and the runtime sanitizer.
    """

    def _fl(self, units=16):
        from repro.core.memory import ExtentFreeList

        return ExtentFreeList(units)

    def test_double_free_raises_typed_error(self):
        from repro.core.memory import FreeListError

        fl = self._fl()
        start = fl.alloc(4)
        fl.free(start, 4)
        with pytest.raises(FreeListError) as exc:
            fl.free(start, 4)
        assert exc.value.rule == "mem-double-free"
        assert "double free" in str(exc.value)

    def test_free_of_never_allocated_extent_raises(self):
        from repro.core.memory import FreeListError

        fl = self._fl()
        fl.alloc(4)  # occupies [0, 4)
        with pytest.raises(FreeListError) as exc:
            fl.free(8, 4)  # in range, but never handed out
        assert exc.value.rule == "mem-double-free"

    def test_out_of_range_free_raises(self):
        from repro.core.memory import FreeListError

        fl = self._fl(16)
        for start, units in [(-1, 4), (14, 4), (0, 0), (0, 17)]:
            with pytest.raises(FreeListError) as exc:
                fl.free(start, units)
            assert exc.value.rule == "mem-free-out-of-range"
            assert "bad free" in str(exc.value)

    def test_mismatched_size_free_raises(self):
        from repro.core.memory import FreeListError

        fl = self._fl()
        start = fl.alloc(8)
        with pytest.raises(FreeListError) as exc:
            fl.free(start, 4)  # partial free would corrupt coalescing
        assert exc.value.rule == "mem-free-mismatched"
        # The allocation is still outstanding after the rejected free.
        fl.free(start, 8)
        assert fl.free_units == 16

    def test_guard_errors_convert_to_diagnostics(self):
        from repro.analysis import Severity
        from repro.core.memory import FreeListError

        fl = self._fl()
        with pytest.raises(FreeListError) as exc:
            fl.free(0, 4)
        diag = exc.value.as_diagnostic()
        assert diag.rule == "mem-double-free"
        assert diag.severity is Severity.ERROR

    def test_exact_free_after_realloc_still_works(self):
        fl = self._fl()
        a = fl.alloc(4)
        fl.free(a, 4)
        b = fl.alloc(4)
        assert b == a  # best-fit reuses the hole
        fl.free(b, 4)  # the re-allocation made this free legal again
        assert fl.free_units == 16

    def test_guards_are_valueerrors_for_compatibility(self):
        from repro.core.memory import FreeListError

        fl = self._fl()
        start = fl.alloc(4)
        fl.free(start, 4)
        with pytest.raises(ValueError):
            fl.free(start, 4)
        assert issubclass(FreeListError, ValueError)
