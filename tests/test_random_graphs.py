"""Property-based integration tests over randomly generated CNN DAGs.

A hypothesis strategy builds random-but-valid networks (convs, depthwise,
pools, activations, BN, residual adds, concats) and checks the engine's
global invariants on each:

* Session output == reference-executor output (optimization is invisible),
* memory plans are sound and arenas never exceed naive allocation,
* serialization round-trips preserve semantics,
* simulated GPU backends compute exactly what the CPU computes,
* the graph optimizer never changes results,
* every generated graph lints clean and its memory plan survives the
  independent sanitizer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import check_memory_plan, format_diagnostics, has_errors, lint_graph
from repro.core import Session, SessionConfig, plan_memory
from repro.core.reference import execute_reference
from repro.converter import optimize
from repro.devices import get_device
from repro.ir import GraphBuilder, dumps, loads

RNG = np.random.default_rng(101)


@st.composite
def random_cnn(draw):
    """Build a random valid CNN over an 8-24px input, 2-8 layers deep."""
    seed = draw(st.integers(0, 10_000))
    hw = draw(st.sampled_from([8, 12, 16, 24]))
    depth = draw(st.integers(2, 8))
    b = GraphBuilder(f"rand_{seed}", seed=seed)
    x = b.input("in", (1, draw(st.sampled_from([1, 3, 4])), hw, hw))
    branches = []  # same-shaped tensors usable for residual adds
    for _ in range(depth):
        kind = draw(st.sampled_from(
            ["conv", "conv1x1", "dwconv", "pool", "act", "bn", "add", "concat"]
        ))
        shape = b.graph.desc(x).shape
        if kind == "conv":
            k = draw(st.sampled_from([2, 3, 5]))
            stride = draw(st.sampled_from([1, 2]))
            oc = draw(st.sampled_from([4, 8, 12]))
            x = b.conv(x, oc=oc, kernel=k, stride=stride, pad_mode="same",
                       activation=draw(st.sampled_from([None, "relu", "relu6"])))
        elif kind == "conv1x1":
            x = b.conv(x, oc=draw(st.sampled_from([4, 8, 16])), kernel=1)
        elif kind == "dwconv":
            x = b.depthwise_conv(x, kernel=3, pad_mode="same")
        elif kind == "pool":
            if shape[2] >= 4:
                if draw(st.booleans()):
                    x = b.max_pool(x, 2)
                else:
                    x = b.avg_pool(x, 2)
        elif kind == "act":
            x = draw(st.sampled_from([b.relu, b.relu6, b.sigmoid, b.tanh]))(x)
        elif kind == "bn":
            x = b.batch_norm(x)
        elif kind == "add":
            match = [t for t in branches if b.graph.desc(t).shape == shape]
            if match:
                x = b.add(x, match[0])
        elif kind == "concat":
            match = [t for t in branches
                     if b.graph.desc(t).shape[2:] == shape[2:]
                     and b.graph.desc(t).shape[0] == shape[0]]
            if match:
                x = b.concat([x, match[0]])
        branches.append(x)
    x = b.fc(b.global_avg_pool(x), units=draw(st.integers(2, 6)))
    b.output(b.softmax(x))
    return b.finish()


def _feed(graph):
    desc = graph.desc(graph.inputs[0])
    return {graph.inputs[0]: RNG.standard_normal(desc.shape).astype(np.float32)}


@given(graph=random_cnn())
@settings(max_examples=20, deadline=None)
def test_session_matches_reference(graph):
    feed = _feed(graph)
    want = execute_reference(graph, feed)[graph.outputs[0]]
    got = list(Session(graph).run(feed).values())[0]
    np.testing.assert_allclose(got, want, atol=1e-4)


@given(graph=random_cnn())
@settings(max_examples=20, deadline=None)
def test_memory_plans_always_sound(graph):
    plan = plan_memory(graph)
    plan.validate()
    slack = 64 * max(1, len(plan.offsets))
    assert plan.arena_bytes <= plan.total_tensor_bytes + slack


@given(graph=random_cnn())
@settings(max_examples=20, deadline=None)
def test_generated_graphs_lint_clean(graph):
    diags = lint_graph(graph)
    assert not has_errors(diags), format_diagnostics(diags)


@given(graph=random_cnn())
@settings(max_examples=20, deadline=None)
def test_sanitizer_blesses_every_generated_plan(graph):
    report = check_memory_plan(graph, plan_memory(graph))
    assert report.ok, format_diagnostics(report.diagnostics)
    assert report.peak_bytes <= report.arena_bytes
    assert report.peak_bytes == plan_memory(graph).peak_bytes


@given(graph=random_cnn())
@settings(max_examples=15, deadline=None)
def test_serialization_preserves_semantics(graph):
    feed = _feed(graph)
    want = execute_reference(graph, feed)[graph.outputs[0]]
    round_tripped = loads(dumps(graph))
    got = execute_reference(round_tripped, feed)[round_tripped.outputs[0]]
    np.testing.assert_allclose(got, want, atol=1e-6)


@given(graph=random_cnn())
@settings(max_examples=10, deadline=None)
def test_gpu_simulation_is_bit_compatible(graph):
    feed = _feed(graph)
    want = list(Session(graph).run(feed).values())[0]
    gpu = Session(graph, SessionConfig(backend="vulkan", device=get_device("MI6")))
    got = list(gpu.run(feed).values())[0]
    np.testing.assert_allclose(got, want, atol=1e-4)


@given(graph=random_cnn())
@settings(max_examples=15, deadline=None)
def test_optimizer_never_changes_results(graph):
    feed = _feed(graph)
    want = execute_reference(graph, feed)[graph.outputs[0]]
    optimize(graph)
    got = execute_reference(graph, feed)[graph.outputs[0]]
    # BN fusion reassociates float32 arithmetic; deep random nets can drift
    # ~1e-2 through the final softmax, so assert distributional closeness.
    np.testing.assert_allclose(got, want, atol=5e-2)
    assert got.argmax() == want.argmax() or abs(np.sort(want.ravel())[-1]
                                                - np.sort(want.ravel())[-2]) < 0.05


@given(graph=random_cnn())
@settings(max_examples=10, deadline=None)
def test_decoupled_and_interleaved_agree(graph):
    feed = _feed(graph)
    a = list(Session(graph, SessionConfig(decouple=True)).run(feed).values())[0]
    b = list(Session(graph, SessionConfig(decouple=False)).run(feed).values())[0]
    np.testing.assert_allclose(a, b, atol=1e-6)
