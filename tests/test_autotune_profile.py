"""Tests for measurement-based scheme auto-tuning and the op profiler."""

import numpy as np
import pytest

from repro.core import Session, SessionConfig, autotune_schemes
from repro.converter import optimize
from repro.ir import GraphBuilder

RNG = np.random.default_rng(71)


def conv_net(hw=32):
    b = GraphBuilder("tune", seed=3)
    x = b.input("in", (1, 8, hw, hw))
    x = b.conv(x, oc=16, kernel=3, activation="relu")
    x = b.conv(x, oc=16, kernel=1)
    x = b.conv(x, oc=16, kernel=3, stride=2)
    b.output(x)
    return b.finish()


class TestAutotune:
    def test_covers_all_convs(self):
        g = conv_net()
        report = autotune_schemes(g, repeats=1)
        convs = [n.name for n in g.nodes if n.op_type == "Conv2D"]
        assert set(report.decisions) == set(convs)
        assert report.tuning_ms > 0

    def test_decisions_carry_measurements(self):
        report = autotune_schemes(conv_net(), repeats=1)
        for name, decision in report.decisions.items():
            assert decision.alternatives  # per-candidate timings recorded
            assert decision.cost == min(decision.alternatives.values())

    def test_strided_conv_gets_no_winograd_candidates(self):
        g = conv_net()
        report = autotune_schemes(g, repeats=1)
        strided = next(
            n.name for n in g.nodes
            if n.op_type == "Conv2D" and tuple(n.attrs["stride"]) == (2, 2)
        )
        assert not any(
            label.startswith("winograd")
            for label in report.measurements[strided]
        )

    def test_model_agreement_metric(self):
        report = autotune_schemes(conv_net(), repeats=1)
        assert 0.0 <= report.agreement_with_model() <= 1.0

    def test_session_accepts_overrides(self):
        g = conv_net()
        report = autotune_schemes(g, repeats=1)
        session = Session(g, SessionConfig(scheme_overrides=report.decisions))
        for name, decision in report.decisions.items():
            assert session.schemes[name].kind == decision.kind
        out = session.run({"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)})
        assert np.isfinite(list(out.values())[0]).all()

    def test_tuned_session_not_slower_than_model_session(self):
        """The point of measuring: on this host the tuned schedule must be
        at least as fast as the ARM-calibrated cost model's choice."""
        from repro.bench import time_callable

        g = optimize(conv_net(hw=64))
        report = autotune_schemes(g, repeats=2)
        feed = {"in": RNG.standard_normal((1, 8, 64, 64)).astype(np.float32)}
        base = Session(g)
        tuned = Session(g, SessionConfig(scheme_overrides=report.decisions))
        t_base = time_callable(lambda: base.run(feed), repeats=5).min_ms
        t_tuned = time_callable(lambda: tuned.run(feed), repeats=5).min_ms
        assert t_tuned <= t_base * 1.2  # never meaningfully worse

    def test_skips_quantized_convs(self):
        from repro.converter import quantize_model

        g = conv_net()
        q = quantize_model(
            g, [{"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)}]
        )
        report = autotune_schemes(q, repeats=1)
        assert not report.decisions  # int8 convs have a single kernel


class TestProfiler:
    def test_profile_covers_every_op(self):
        g = conv_net()
        session = Session(g)
        feed = {"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)}
        outputs, profile = session.run_profiled(feed)
        runnable = [n for n in g.nodes if n.op_type not in ("Input", "Constant")]
        assert len(profile) == len(runnable)
        assert all(p.wall_ms >= 0 for p in profile)
        assert {p.backend for p in profile} == {"cpu"}

    def test_profiled_outputs_match_plain_run(self):
        g = conv_net()
        session = Session(g)
        feed = {"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)}
        plain = session.run(feed)
        profiled, _ = session.run_profiled(feed)
        for name in plain:
            np.testing.assert_array_equal(plain[name], profiled[name])

    def test_virtual_time_attribution_on_gpu(self):
        from repro.devices import get_device

        g = conv_net()
        session = Session(g, SessionConfig(backend="vulkan", device=get_device("MI6")))
        feed = {"in": RNG.standard_normal((1, 8, 32, 32)).astype(np.float32)}
        _, profile = session.run_profiled(feed)
        assert sum(p.virtual_ms for p in profile) == pytest.approx(
            session.last_run.virtual_ms, rel=0.01
        )
        assert all(p.virtual_ms > 0 for p in profile if p.backend == "vulkan")

    def test_profile_sums_to_run_wall_time_roughly(self):
        g = conv_net(hw=64)
        session = Session(g)
        feed = {"in": RNG.standard_normal((1, 8, 64, 64)).astype(np.float32)}
        session.run(feed)
        _, profile = session.run_profiled(feed)
        total_ops = sum(p.wall_ms for p in profile)
        assert total_ops <= session.last_run.wall_ms * 3  # sanity, not exact
