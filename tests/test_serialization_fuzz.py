"""Fuzz tests: corrupted model files must fail cleanly, never crash or hang.

The loader's contract is that any malformed input raises FormatError (or a
clean GraphError/ValueError from validation) — never a segfault-ish numpy
error, KeyError leak, or silent wrong model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import FormatError, GraphBuilder, GraphError, dumps, loads

ACCEPTABLE = (FormatError, GraphError, ValueError, KeyError)


def model_bytes(seed=0):
    b = GraphBuilder("fuzz", seed=seed)
    x = b.input("in", (1, 3, 8, 8))
    x = b.conv(x, oc=4, kernel=3, activation="relu")
    x = b.fc(b.global_avg_pool(x), units=2)
    b.output(b.softmax(x))
    return dumps(b.finish())


BLOB = model_bytes()


class TestSerializationFuzz:
    @given(
        offset=st.integers(0, len(BLOB) - 1),
        value=st.integers(0, 255),
    )
    @settings(max_examples=120, deadline=None)
    def test_single_byte_flip_never_crashes(self, offset, value):
        data = bytearray(BLOB)
        if data[offset] == value:
            value = (value + 1) % 256
        data[offset] = value
        try:
            graph = loads(bytes(data))
        except ACCEPTABLE:
            return  # clean rejection
        # a flip in weight payload bytes can yield a still-valid model;
        # if it loaded, it must be structurally sound
        graph.validate()

    @given(cut=st.integers(0, len(BLOB) - 1))
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_crashes(self, cut):
        with pytest.raises(ACCEPTABLE):
            loads(BLOB[:cut])

    @given(junk=st.binary(min_size=0, max_size=256))
    @settings(max_examples=60, deadline=None)
    def test_random_junk_rejected(self, junk):
        if junk[:4] == b"RMNN":
            return  # astronomically unlikely, but skip true-prefix junk
        with pytest.raises(ACCEPTABLE):
            loads(junk)

    @given(extra=st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_trailing_garbage_tolerated_or_rejected(self, extra):
        # appended bytes after a complete model: loader reads a prefix, so
        # this must either load the identical model or reject cleanly
        try:
            graph = loads(BLOB + extra)
        except ACCEPTABLE:
            return
        graph.validate()
        assert [n.op_type for n in graph.nodes] == [
            n.op_type for n in loads(BLOB).nodes
        ]

    def test_swapped_sections_rejected(self):
        # move the constants count field into the metadata: must not hang
        data = bytearray(BLOB)
        mid = len(data) // 2
        data[16:20], data[mid : mid + 4] = data[mid : mid + 4], data[16:20]
        with pytest.raises(ACCEPTABLE):
            loads(bytes(data))


def quantized_model_bytes(seed=3):
    """A serialized *quantized* decoder: int8 constants + scale attrs."""
    from repro.models.text import tiny_decoder
    from repro.quant import quantize_graph

    graph = tiny_decoder(mode="full", seq_len=8, batch=1, vocab=32,
                         max_seq=8, d_model=16, heads=2, layers=1, seed=seed)
    return dumps(quantize_graph(graph))


QBLOB = quantized_model_bytes()


class TestQuantizedSerializationFuzz:
    """int8 tensors and scale metadata through the same corruption mill.

    The quantized format adds two attack surfaces: int8 constant
    payloads and the float scale lists stamped into node attrs.  Neither
    may crash the loader; a *loaded-but-wrong* scale must surface as a
    typed Q-rule diagnostic, not as downstream garbage.
    """

    def test_quantized_round_trip_preserves_scales(self):
        graph = loads(QBLOB)
        graph.validate()
        int8_consts = [c for c in graph.constants.values() if c.dtype == np.int8]
        assert int8_consts, "quantized model lost its int8 constants"
        scaled = [n for n in graph.nodes if n.attrs.get("weight_scales")]
        assert scaled, "quantized model lost its weight_scales attrs"
        assert loads(dumps(graph)).tensor_descs == graph.tensor_descs

    @given(
        offset=st.integers(0, len(QBLOB) - 1),
        value=st.integers(0, 255),
    )
    @settings(max_examples=120, deadline=None)
    def test_quantized_byte_flip_never_crashes(self, offset, value):
        data = bytearray(QBLOB)
        if data[offset] == value:
            value = (value + 1) % 256
        data[offset] = value
        try:
            graph = loads(bytes(data))
        except ACCEPTABLE:
            return  # clean rejection
        graph.validate()

    @given(cut=st.integers(0, len(QBLOB) - 1))
    @settings(max_examples=60, deadline=None)
    def test_quantized_truncation_never_crashes(self, cut):
        with pytest.raises(ACCEPTABLE):
            loads(QBLOB[:cut])

    def test_corrupt_scales_yield_typed_diagnostics(self):
        # Sabotage the scale metadata in every way the wire can: the
        # lint pass must convert each into a typed Q diagnostic instead
        # of letting the kernels divide by it.
        from repro.analysis import Severity, lint_graph

        graph = loads(QBLOB)
        scaled = [n for n in graph.nodes if n.attrs.get("weight_scales")]
        scaled[0].attrs["weight_scales"] = [
            float("nan")
        ] * len(scaled[0].attrs["weight_scales"])               # Q001
        if len(scaled) > 1:
            scaled[1].attrs["weight_scales"] = (
                scaled[1].attrs["weight_scales"][:-1]
            )                                                   # Q003
        diags = [d for d in lint_graph(graph) if d.rule.startswith("Q")]
        assert any(d.rule == "Q001" for d in diags)
        if len(scaled) > 1:
            assert any(d.rule == "Q003" for d in diags)
        assert all(d.severity is Severity.ERROR for d in diags)

    def test_missing_scales_yield_q003(self):
        from repro.analysis import lint_graph

        graph = loads(QBLOB)
        scaled = [n for n in graph.nodes if n.attrs.get("weight_scales")]
        for node in scaled:
            node.attrs["weight_scales"] = None
        diags = [d for d in lint_graph(graph) if d.rule == "Q003"]
        assert len(diags) == len(scaled)
