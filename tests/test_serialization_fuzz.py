"""Fuzz tests: corrupted model files must fail cleanly, never crash or hang.

The loader's contract is that any malformed input raises FormatError (or a
clean GraphError/ValueError from validation) — never a segfault-ish numpy
error, KeyError leak, or silent wrong model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import FormatError, GraphBuilder, GraphError, dumps, loads

ACCEPTABLE = (FormatError, GraphError, ValueError, KeyError)


def model_bytes(seed=0):
    b = GraphBuilder("fuzz", seed=seed)
    x = b.input("in", (1, 3, 8, 8))
    x = b.conv(x, oc=4, kernel=3, activation="relu")
    x = b.fc(b.global_avg_pool(x), units=2)
    b.output(b.softmax(x))
    return dumps(b.finish())


BLOB = model_bytes()


class TestSerializationFuzz:
    @given(
        offset=st.integers(0, len(BLOB) - 1),
        value=st.integers(0, 255),
    )
    @settings(max_examples=120, deadline=None)
    def test_single_byte_flip_never_crashes(self, offset, value):
        data = bytearray(BLOB)
        if data[offset] == value:
            value = (value + 1) % 256
        data[offset] = value
        try:
            graph = loads(bytes(data))
        except ACCEPTABLE:
            return  # clean rejection
        # a flip in weight payload bytes can yield a still-valid model;
        # if it loaded, it must be structurally sound
        graph.validate()

    @given(cut=st.integers(0, len(BLOB) - 1))
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_crashes(self, cut):
        with pytest.raises(ACCEPTABLE):
            loads(BLOB[:cut])

    @given(junk=st.binary(min_size=0, max_size=256))
    @settings(max_examples=60, deadline=None)
    def test_random_junk_rejected(self, junk):
        if junk[:4] == b"RMNN":
            return  # astronomically unlikely, but skip true-prefix junk
        with pytest.raises(ACCEPTABLE):
            loads(junk)

    @given(extra=st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_trailing_garbage_tolerated_or_rejected(self, extra):
        # appended bytes after a complete model: loader reads a prefix, so
        # this must either load the identical model or reject cleanly
        try:
            graph = loads(BLOB + extra)
        except ACCEPTABLE:
            return
        graph.validate()
        assert [n.op_type for n in graph.nodes] == [
            n.op_type for n in loads(BLOB).nodes
        ]

    def test_swapped_sections_rejected(self):
        # move the constants count field into the metadata: must not hang
        data = bytearray(BLOB)
        mid = len(data) // 2
        data[16:20], data[mid : mid + 4] = data[mid : mid + 4], data[16:20]
        with pytest.raises(ACCEPTABLE):
            loads(bytes(data))
