"""Unit tests for the sanitizer's three checkers and the facade.

Each detector is exercised with *seeded* defects — a synthetic data
race, a lock-order deadlock cycle, a leaked/double-freed/stale extent —
plus the matching clean pattern, because a detector that cannot tell the
two apart is worse than none (ISSUE acceptance: at least one of each
must be detected).
"""

import threading

import pytest

from repro.sanitize import (
    LifecycleTracker,
    LockOrderRecorder,
    RaceDetector,
    SanitizeError,
    Sanitizer,
    get_sanitizer,
    resolve_sanitizer,
    set_sanitizer,
)

pytestmark = pytest.mark.sanitize


class TestRaceDetector:
    def test_unordered_writes_without_locks_race(self):
        d = RaceDetector()
        assert d.access(1, "x", "w", frozenset()) == 0
        assert d.access(2, "x", "w", frozenset()) == 1
        assert d.races[0].kind == "write-write"
        assert d.races[0].var == "x"

    def test_common_lock_suppresses_race(self):
        d = RaceDetector()
        d.access(1, "x", "w", frozenset({"m"}))
        assert d.access(2, "x", "w", frozenset({"m"})) == 0

    def test_disjoint_locksets_still_race(self):
        d = RaceDetector()
        d.access(1, "x", "w", frozenset({"a"}))
        assert d.access(2, "x", "w", frozenset({"b"})) == 1

    def test_happens_before_edge_suppresses_race(self):
        d = RaceDetector()
        d.access(1, "x", "w", frozenset())
        d.send(1, "chan")
        d.recv(2, "chan")  # thread 2 absorbed thread 1's clock
        assert d.access(2, "x", "w", frozenset()) == 0

    def test_write_read_and_read_write_kinds(self):
        d = RaceDetector()
        d.access(1, "x", "w", frozenset())
        assert d.access(2, "x", "r", frozenset()) == 1
        assert d.races[-1].kind == "write-read"
        d2 = RaceDetector()
        d2.access(1, "y", "r", frozenset())
        assert d2.access(2, "y", "w", frozenset()) == 1
        assert d2.races[-1].kind == "read-write"

    def test_same_thread_never_races(self):
        d = RaceDetector()
        d.access(1, "x", "w", frozenset())
        assert d.access(1, "x", "w", frozenset()) == 0

    def test_duplicate_races_dedup(self):
        d = RaceDetector()
        d.access(1, "x", "w", frozenset())
        d.access(2, "x", "r", frozenset())
        d.access(2, "x", "r", frozenset())
        assert len(d.races) == 1  # same (var, kind, tid pair) reported once

    def test_lock_channel_orders_critical_sections(self):
        # release -> acquire is modelled as send -> recv on the lock key.
        d = RaceDetector()
        d.recv(1, ("lock", "m"))
        d.access(1, "x", "w", frozenset({"m"}))
        d.send(1, ("lock", "m"))
        d.recv(2, ("lock", "m"))
        # Second thread accesses *outside* the lock, but strictly after
        # the first critical section: ordered, so no race.
        assert d.access(2, "x", "w", frozenset()) == 0

    def test_read_ring_is_bounded(self):
        d = RaceDetector(max_reads=4)
        for tid in range(1, 10):
            d.access(tid, "x", "r", frozenset({"m"}))
        assert len(d._reads["x"]) == 4


class TestLockOrderRecorder:
    def test_inverted_order_is_a_cycle(self):
        r = LockOrderRecorder()
        r.acquire(1, "A"); r.acquire(1, "B"); r.release(1, "B"); r.release(1, "A")
        r.acquire(2, "B"); r.acquire(2, "A"); r.release(2, "A"); r.release(2, "B")
        cycles = r.cycles()
        assert len(cycles) == 1
        assert set(cycles[0].names) == {"A", "B"}

    def test_consistent_order_is_clean(self):
        r = LockOrderRecorder()
        for tid in (1, 2):
            r.acquire(tid, "A"); r.acquire(tid, "B")
            r.release(tid, "B"); r.release(tid, "A")
        assert r.cycles() == []

    def test_three_lock_cycle(self):
        r = LockOrderRecorder()
        for tid, (outer, inner) in enumerate([("A", "B"), ("B", "C"), ("C", "A")]):
            r.acquire(tid, outer); r.acquire(tid, inner)
            r.release(tid, inner); r.release(tid, outer)
        cycles = r.cycles()
        assert len(cycles) == 1
        assert set(cycles[0].names) == {"A", "B", "C"}

    def test_reentrant_self_acquire_is_not_an_edge(self):
        r = LockOrderRecorder()
        r.acquire(1, "A"); r.acquire(1, "A")  # RLock re-entry
        r.release(1, "A"); r.release(1, "A")
        assert r.cycles() == []

    def test_held_tracks_the_stack(self):
        r = LockOrderRecorder()
        r.acquire(1, "A"); r.acquire(1, "B")
        assert list(r.held(1)) == ["A", "B"]
        r.release(1, "B")
        assert list(r.held(1)) == ["A"]


class TestLifecycleTracker:
    def test_leak_at_scope_close(self):
        t = LifecycleTracker()
        t.carve("s", "k", 0, 4)
        leaks = t.close_scope("s")
        assert [f.rule for f in leaks] == ["leak"]

    def test_retired_extent_is_not_a_leak(self):
        t = LifecycleTracker()
        t.carve("s", "k", 0, 4)
        t.retire("s", "k")
        assert t.close_scope("s") == []

    def test_double_free(self):
        t = LifecycleTracker()
        t.carve("s", "k", 0, 4)
        t.free("s", "k")
        t.free("s", "k")
        assert [f.rule for f in t.findings] == ["double-free"]

    def test_use_after_free(self):
        t = LifecycleTracker()
        t.carve("s", "k", 0, 4)
        t.free("s", "k")
        assert t.use("s", "k") is False
        assert t.findings[-1].rule == "use-after-free"

    def test_generation_counter_poisons_stale_handles(self):
        t = LifecycleTracker()
        g0 = t.carve("s", "k", 0, 4)
        t.free("s", "k")
        g1 = t.carve("s", "k", 8, 4)  # same key re-carved elsewhere
        assert g1 == g0 + 1
        assert t.use("s", "k", generation=g1) is True
        assert t.use("s", "k", generation=g0) is False  # stale handle
        assert t.findings[-1].rule == "use-after-free"
        assert "stale handle" in t.findings[-1].message

    def test_wild_free_and_wild_use(self):
        t = LifecycleTracker()
        t.free("s", "ghost")
        t.use("s", "ghost")
        assert [f.rule for f in t.findings] == ["wild-free", "wild-use"]

    def test_close_scope_is_scoped(self):
        t = LifecycleTracker()
        t.carve("a", "k", 0, 4)
        t.carve("b", "k", 0, 4)
        assert len(t.close_scope("a")) == 1
        assert len(t.live_extents("b")) == 1


class TestSanitizerFacade:
    def test_probe_finds_planted_race_and_counts_it(self):
        from repro.obs.metrics import MetricsRegistry

        m = MetricsRegistry()
        san = Sanitizer(metrics=m)
        obj = object()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            san.probe(obj, "field", "w")

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = san.report()
        assert len(report.races) == 1
        assert m.value("sanitize.races") == 1

    def test_locked_context_supplies_lockset(self):
        san = Sanitizer()
        lock = threading.Lock()
        obj = object()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            with san.locked(lock, "m"):
                san.probe(obj, "field", "w")

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert san.report().ok

    def test_locked_records_cycles(self):
        san = Sanitizer()
        a, b = threading.Lock(), threading.Lock()
        with san.locked(a, "A"):
            with san.locked(b, "B"):
                pass
        with san.locked(b, "B"):
            with san.locked(a, "A"):
                pass
        report = san.report()
        assert len(report.lock_cycles) == 1
        assert set(report.lock_cycles[0].names) == {"A", "B"}

    def test_disabled_sanitizer_is_inert(self):
        san = Sanitizer(enabled=False)
        lock = threading.Lock()
        assert san.locked(lock, "m") is lock  # raw lock, zero wrapping
        san.probe(object(), "f", "w")
        san.hb_send("k"); san.hb_recv("k")
        assert san.carve("s", "k", 0, 1) == 0
        san.free_extent("s", "k"); san.free_extent("s", "k")
        assert san.report().ok

    def test_report_diagnostics_and_raise(self):
        san = Sanitizer()
        san.carve("s", "k", 0, 4)
        san.free_extent("s", "k")
        san.free_extent("s", "k")
        report = san.report()
        diags = report.diagnostics()
        assert [d.rule for d in diags] == ["sanitize-double-free"]
        with pytest.raises(SanitizeError) as exc:
            report.raise_if_failed()
        assert exc.value.report is report

    def test_counters_preregistered_at_zero(self):
        from repro.obs.metrics import MetricsRegistry

        m = MetricsRegistry()
        Sanitizer(metrics=m)
        snapshot = m.snapshot()["counters"]
        for name in ("sanitize.races", "sanitize.lock_cycles", "sanitize.leaks"):
            assert snapshot[name] == 0

    def test_resolve_semantics(self):
        default = get_sanitizer()
        assert resolve_sanitizer(False) is default
        assert resolve_sanitizer(None) is default
        fresh = resolve_sanitizer(True)
        assert fresh.enabled and fresh is not default
        assert resolve_sanitizer(fresh) is fresh

    def test_set_sanitizer_roundtrip(self):
        mine = Sanitizer()
        prev = set_sanitizer(mine)
        try:
            assert get_sanitizer() is mine
        finally:
            set_sanitizer(prev)
        assert get_sanitizer() is prev

    def test_clear_resets_findings(self):
        san = Sanitizer()
        san.probe(object(), "f", "w")
        san.carve("s", "k", 0, 1)
        san.clear()
        report = san.report()
        assert report.ok and report.total == 0
