"""Integration tests for Session: pre-inference, hybrid scheduling, runs."""

import numpy as np
import pytest

from repro.backends import BackendError
from repro.core import Session, SessionConfig, choose_backend
from repro.devices import get_device
from repro.ir import GraphBuilder, GraphError

RNG = np.random.default_rng(5)


def build_net(hw=32):
    b = GraphBuilder("net", seed=1)
    x = b.input("data", (1, 3, hw, hw))
    x = b.conv(x, oc=16, kernel=3, stride=2, activation="relu")
    x = b.depthwise_conv(x, kernel=3)
    x = b.batch_norm(x)
    y = b.conv(x, oc=16, kernel=1)
    x = b.add(x, y)
    x = b.conv(x, oc=32, kernel=3)
    x = b.max_pool(x, 2)
    x = b.fc(b.global_avg_pool(x), units=10)
    b.output(b.softmax(x))
    return b.finish()


def feed(hw=32):
    return {"data": RNG.standard_normal((1, 3, hw, hw)).astype(np.float32)}


class TestCpuSession:
    def test_runs_and_produces_probabilities(self):
        session = Session(build_net())
        out = list(session.run(feed()).values())[0]
        assert out.shape == (1, 10)
        assert out.sum() == pytest.approx(1.0, abs=1e-4)

    def test_repeated_runs_deterministic(self):
        session = Session(build_net())
        f = feed()
        a = list(session.run(f).values())[0]
        b = list(session.run(f).values())[0]
        np.testing.assert_array_equal(a, b)

    def test_missing_input(self):
        session = Session(build_net())
        with pytest.raises(GraphError, match="missing input"):
            session.run({})

    def test_wrong_shape(self):
        session = Session(build_net())
        with pytest.raises(GraphError, match="expected shape"):
            session.run({"data": np.zeros((1, 3, 8, 8), np.float32)})

    def test_preinference_artifacts(self):
        session = Session(build_net())
        assert session.memory_plan is not None
        session.memory_plan.validate()
        assert session.scheme_summary()  # schemes were selected
        assert session.placement_summary() == {"cpu": 10}

    def test_decouple_off_still_correct(self):
        f = feed()
        ref = list(Session(build_net()).run(f).values())[0]
        raw = list(
            Session(build_net(), SessionConfig(decouple=False)).run(f).values()
        )[0]
        np.testing.assert_allclose(ref, raw, atol=1e-5)
        # no memory plan is built without decoupling
        assert Session(build_net(), SessionConfig(decouple=False)).memory_plan is None


class TestSimulatedBackends:
    @pytest.mark.parametrize("api", ["vulkan", "opencl", "opengl", "metal"])
    def test_gpu_matches_cpu_numerics(self, api):
        device = get_device("iPhoneX" if api == "metal" else "MI6")
        f = feed()
        ref = list(Session(build_net()).run(f).values())[0]
        session = Session(build_net(), SessionConfig(backend=api, device=device))
        got = list(session.run(f).values())[0]
        np.testing.assert_allclose(ref, got, atol=1e-4)

    def test_gpu_requires_device(self):
        with pytest.raises(BackendError, match="DeviceSpec"):
            Session(build_net(), SessionConfig(backend="vulkan"))

    def test_metal_rejected_on_android(self):
        with pytest.raises(BackendError, match="does not expose"):
            Session(build_net(), SessionConfig(backend="metal", device=get_device("MI6")))

    def test_hybrid_placement_on_sparse_backend(self):
        # OpenGL supports only a handful of ops: the rest must fall to CPU
        session = Session(
            build_net(), SessionConfig(backend="opengl", device=get_device("MI6"))
        )
        placement = session.placement_summary()
        assert placement.get("opengl", 0) > 0
        assert placement.get("sim_cpu", 0) > 0
        out = list(session.run(feed()).values())[0]
        assert out.sum() == pytest.approx(1.0, abs=1e-4)
        # hybrid execution forces at least one cross-backend copy
        assert session.last_run.copies > 0

    def test_virtual_time_advances(self):
        session = Session(
            build_net(), SessionConfig(backend="vulkan", device=get_device("MI6"))
        )
        session.run(feed())
        assert session.last_run.virtual_ms > 0

    def test_decoupling_reduces_gpu_time(self):
        """Table 2's mechanism: pre-recorded command buffers."""
        device = get_device("MI6")
        with_d = Session(build_net(), SessionConfig(backend="vulkan", device=device))
        without = Session(
            build_net(), SessionConfig(backend="vulkan", device=device, decouple=False)
        )
        f = feed()
        with_d.run(f)
        without.run(f)
        assert with_d.last_run.virtual_ms < without.last_run.virtual_ms

    def test_decoupling_reduces_sim_cpu_time(self):
        device = get_device("MI6")
        f = feed()
        with_d = Session(build_net(), SessionConfig(backend="sim_cpu", device=device))
        without = Session(
            build_net(), SessionConfig(backend="sim_cpu", device=device, decouple=False)
        )
        with_d.run(f)
        without.run(f)
        assert with_d.last_run.virtual_ms < without.last_run.virtual_ms

    def test_modeled_cost_positive(self):
        session = Session(
            build_net(), SessionConfig(backend="vulkan", device=get_device("MI6"))
        )
        assert session.modeled_cost_ms() > 0


class TestBackendSelection:
    def test_choose_backend_prefers_gpu_for_heavy_graph(self):
        g = build_net(hw=128)  # heavy: GPU FLOPS win
        choice = choose_backend(g, get_device("MI6"), 4, ("sim_cpu", "vulkan", "opengl"))
        assert choice == "vulkan"

    def test_choose_backend_prefers_cpu_for_tiny_graph(self):
        b = GraphBuilder("tiny", seed=0)
        x = b.input("in", (1, 2, 4, 4))
        b.output(b.conv(x, oc=2, kernel=1))
        g = b.finish()
        choice = choose_backend(g, get_device("MI6"), 4, ("sim_cpu", "opencl"))
        assert choice == "sim_cpu"  # t_schedule dominates a 4x4 conv

    def test_auto_backend_session(self):
        session = Session(
            build_net(hw=64),
            SessionConfig(auto_backend=True, device=get_device("MI6")),
        )
        assert session.backend_kind in ("vulkan", "opencl", "opengl", "sim_cpu")
        out = list(session.run(feed(64)).values())[0]
        assert np.isfinite(out).all()

    def test_unknown_backend_kind(self):
        with pytest.raises(BackendError, match="unknown backend"):
            Session(build_net(), SessionConfig(backend="tpu", device=get_device("MI6")))
