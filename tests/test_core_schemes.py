"""Tests for convolution scheme selection (Eq. 2/3 + Table 1 decisions)."""

import pytest

from repro.core import SchemeConfig, select_conv_scheme, select_graph_schemes
from repro.ir import GraphBuilder


class TestSelectConvScheme:
    def test_1x1_uses_gemm(self):
        d = select_conv_scheme((1, 1), ic=64, oc=64, out_hw=(32, 32))
        assert d.kind == "gemm1x1"

    def test_table1_case1_small_channels_prefers_sliding(self):
        # (k, ic, oc, size) = (2, 3, 16, 224): Table 1 row 1, sliding wins
        d = select_conv_scheme((2, 2), ic=3, oc=16, out_hw=(223, 223))
        assert d.kind == "sliding"

    def test_table1_case2_deep_small_map_prefers_winograd(self):
        # (2, 512, 512, 16): Table 1 row 2, Winograd with a small block wins
        d = select_conv_scheme((2, 2), ic=512, oc=512, out_hw=(15, 15))
        assert d.kind == "winograd"
        # on a 15x15 output the largest candidate must NOT win (boundary waste)
        assert d.winograd_n <= 6

    def test_table1_case3_3x3_prefers_winograd(self):
        # (3, 64, 64, 112): Table 1 row 3
        d = select_conv_scheme((3, 3), ic=64, oc=64, out_hw=(110, 110))
        assert d.kind == "winograd"
        assert d.winograd_n >= 4  # big maps afford larger blocks

    def test_strided_conv_cannot_use_winograd(self):
        d = select_conv_scheme((3, 3), ic=64, oc=64, out_hw=(56, 56), stride=(2, 2))
        assert d.kind == "sliding"

    def test_dilated_conv_cannot_use_winograd(self):
        d = select_conv_scheme((3, 3), ic=64, oc=64, out_hw=(56, 56), dilation=(2, 2))
        assert d.kind == "sliding"

    def test_grouped_conv_cannot_use_winograd(self):
        d = select_conv_scheme((3, 3), ic=64, oc=64, out_hw=(56, 56), groups=2)
        assert d.kind == "sliding"

    def test_non_square_kernel_uses_rectangular_winograd(self):
        """Generator extension: asymmetric kernels get per-axis Winograd."""
        d = select_conv_scheme((1, 7), ic=128, oc=128, out_hw=(17, 17))
        assert d.kind == "winograd_rect"
        nh, nw = d.winograd_n_hw
        assert nh == 1  # no tiling along the k=1 axis
        assert nw > 1
        assert d.cost < d.alternatives["sliding"]

    def test_non_square_small_channels_still_sliding(self):
        d = select_conv_scheme((1, 7), ic=4, oc=4, out_hw=(8, 8))
        assert d.kind == "sliding"

    def test_rect_winograd_strided_falls_back(self):
        d = select_conv_scheme((1, 7), ic=128, oc=128, out_hw=(9, 9), stride=(2, 2))
        assert d.kind == "sliding"

    def test_max_tile_respected(self):
        cfg = SchemeConfig(winograd_candidates=(1, 2, 4, 6, 8), max_tile=4)
        d = select_conv_scheme((3, 3), ic=256, oc=256, out_hw=(64, 64), config=cfg)
        if d.kind == "winograd":
            assert d.winograd_n + 3 - 1 <= 4

    def test_alternatives_recorded(self):
        d = select_conv_scheme((3, 3), ic=64, oc=64, out_hw=(56, 56))
        assert "sliding" in d.alternatives
        assert any(key.startswith("winograd") for key in d.alternatives)
        # the decision's cost is the minimum over alternatives it considered
        assert d.cost == pytest.approx(min(d.alternatives.values()))

    def test_eq3_nhat_one_means_sliding(self):
        # tiny channels make every Winograd candidate lose -> n-hat = 1
        d = select_conv_scheme((5, 5), ic=1, oc=1, out_hw=(8, 8))
        assert d.kind == "sliding"
        assert d.winograd_n == 1

    def test_higher_transform_weight_discourages_winograd(self):
        borderline = dict(kernel=(3, 3), ic=8, oc=8, out_hw=(28, 28))
        cheap = select_conv_scheme(**borderline, config=SchemeConfig(transform_weight=0.5))
        pricey = select_conv_scheme(**borderline, config=SchemeConfig(transform_weight=50.0))
        assert cheap.kind == "winograd"
        assert pricey.kind == "sliding"


class TestSelectGraphSchemes:
    def test_covers_every_conv(self):
        b = GraphBuilder("g", seed=0)
        x = b.input("in", (1, 3, 56, 56))
        x = b.conv(x, oc=32, kernel=3, activation="relu")   # winograd-able
        x = b.conv(x, oc=64, kernel=1)                       # gemm1x1
        x = b.conv(x, oc=64, kernel=3, stride=2)             # sliding (stride)
        x = b.depthwise_conv(x, kernel=3)                    # not a Conv2D
        b.output(x)
        g = b.finish()
        decisions = select_graph_schemes(g)
        conv_nodes = [n for n in g.nodes if n.op_type == "Conv2D"]
        assert set(decisions) == {n.name for n in conv_nodes}
        kinds = sorted(d.kind for d in decisions.values())
        assert kinds == ["gemm1x1", "sliding", "winograd"]
