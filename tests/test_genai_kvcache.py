"""KV-cache memory planning: the extent free list, the page/bucket slab
allocator, its sanitizer integration, and the ``kvcache.alloc`` fault
site's eviction+retry resilience ladder."""

import threading

import numpy as np
import pytest

from repro.analysis import check_slab_plan, has_errors
from repro.core.memory import ALIGNMENT, ExtentFreeList
from repro.faults import FaultPlan, FaultRule
from repro.genai import KVCacheAllocator, KVCacheConfig, KVCacheOOM
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics

pytestmark = pytest.mark.genai

RNG = np.random.default_rng(7)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    previous = set_metrics(MetricsRegistry())
    yield
    set_metrics(previous)


def make_config(**overrides):
    base = dict(layers=2, heads=2, d_head=8, page_tokens=8,
                capacity_tokens=128, max_seq=64)
    base.update(overrides)
    return KVCacheConfig(**base)


class TestExtentFreeList:
    def test_alloc_free_round_trip(self):
        fl = ExtentFreeList(10)
        a = fl.alloc(4)
        b = fl.alloc(6)
        assert {a, b} == {0, 4}
        assert fl.free_units == 0
        assert fl.alloc(1) is None
        fl.free(a, 4)
        fl.free(b, 6)
        assert fl.free_units == 10
        assert fl.extents() == [(0, 10)]  # coalesced back to one extent

    def test_best_fit_prefers_smallest_hole(self):
        fl = ExtentFreeList(20)
        blocks = [fl.alloc(5) for _ in range(4)]
        fl.free(blocks[0], 5)    # hole [0, 5)
        fl.free(blocks[2], 5)    # hole [10, 15)
        fl.free(blocks[3], 5)    # merges -> hole [10, 20)
        assert fl.alloc(5) == 0  # the tight 5-unit hole, not the big one
        assert fl.alloc(10) == 10

    def test_coalescing_both_sides(self):
        fl = ExtentFreeList(12)
        a, b, c = fl.alloc(4), fl.alloc(4), fl.alloc(4)
        fl.free(a, 4)
        fl.free(c, 4)
        fl.free(b, 4)  # middle free must merge with both neighbours
        assert fl.extents() == [(0, 12)]

    def test_double_free_rejected(self):
        fl = ExtentFreeList(8)
        start = fl.alloc(4)
        fl.free(start, 4)
        with pytest.raises(ValueError, match="double free"):
            fl.free(start, 2)

    def test_out_of_range_free_rejected(self):
        fl = ExtentFreeList(8)
        with pytest.raises(ValueError, match="bad free"):
            fl.free(6, 4)

    def test_fragmentation_is_bounded_by_interleaving(self):
        """Random alloc/free churn never loses units to bookkeeping."""
        fl = ExtentFreeList(64)
        held = []
        rng = np.random.default_rng(3)
        for _ in range(300):
            if held and rng.random() < 0.45:
                start, units = held.pop(rng.integers(len(held)))
                fl.free(start, units)
            else:
                units = int(rng.integers(1, 9))
                start = fl.alloc(units)
                if start is not None:
                    held.append((start, units))
        assert fl.free_units + sum(u for _, u in held) == 64
        fl2_total = fl.free_units
        for start, units in held:
            fl.free(start, units)
        assert fl.free_units == 64
        assert fl.extents() == [(0, 64)]
        assert fl2_total <= 64


class TestKVCacheConfig:
    def test_buckets_double_to_max_seq(self):
        cfg = make_config(page_tokens=8, max_seq=48)
        assert cfg.buckets() == [8, 16, 32, 48]
        assert cfg.bucket_for(1) == 8
        assert cfg.bucket_for(17) == 32
        assert cfg.bucket_for(48) == 48
        with pytest.raises(ValueError, match="exceeds max_seq"):
            cfg.bucket_for(49)

    def test_page_bytes_aligned(self):
        cfg = make_config()
        assert cfg.page_bytes % ALIGNMENT == 0
        assert cfg.page_bytes >= cfg.page_tokens * cfg.per_token_bytes

    def test_empty_arena_rejected(self):
        with pytest.raises(ValueError, match="holds no"):
            KVCacheAllocator(make_config(capacity_tokens=4, page_tokens=8))


class TestKVCacheAllocator:
    def test_slab_views_are_arena_backed(self):
        alloc = KVCacheAllocator(make_config())
        slab = alloc.alloc("s0", 10)
        assert slab.capacity == 16  # bucketed up from 10
        k = slab.k(0)
        assert k.shape == (2, 16, 8)
        k[:] = 7.0
        # A second view must observe the write: zero-copy into the arena.
        np.testing.assert_array_equal(slab.k(0), 7.0)
        assert slab.v(1).base is not None

    def test_slabs_do_not_alias(self):
        alloc = KVCacheAllocator(make_config())
        a = alloc.alloc("a", 16)
        b = alloc.alloc("b", 16)
        a.k(0)[:] = 1.0
        b.k(0)[:] = 2.0
        np.testing.assert_array_equal(a.k(0), 1.0)
        np.testing.assert_array_equal(b.k(0), 2.0)

    def test_grow_preserves_rows_and_frees_old_pages(self):
        alloc = KVCacheAllocator(make_config())
        slab = alloc.alloc("s", 8)
        rows = RNG.standard_normal((2, 5, 8)).astype(np.float32)
        slab.k(0)[:, :5] = rows
        slab.length = 5
        before = alloc.free_pages
        grown = alloc.grow(slab, 20)
        assert grown.capacity == 32
        assert grown.length == 5
        np.testing.assert_array_equal(grown.k(0)[:, :5], rows)
        assert slab.freed
        assert alloc.free_pages == before + 1 - 4  # +1 old page, -4 new

    def test_grow_within_bucket_is_noop(self):
        alloc = KVCacheAllocator(make_config())
        slab = alloc.alloc("s", 3)
        assert alloc.grow(slab, slab.capacity) is slab

    def test_exhaustion_raises_oom(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=32))
        alloc.alloc("a", 16)
        alloc.alloc("b", 16)
        with pytest.raises(KVCacheOOM, match="arena exhausted"):
            alloc.alloc("c", 8)

    def test_release_returns_pages(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=32))
        a = alloc.alloc("a", 16)
        alloc.alloc("b", 16)
        alloc.release(a)
        c = alloc.alloc("c", 16)  # reuses a's pages
        assert c.page_start == a.page_start

    def test_retired_slabs_evict_lru_under_pressure(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=32))
        a = alloc.alloc("a", 16)
        b = alloc.alloc("b", 16)
        alloc.release(a, evictable=True)
        alloc.release(b, evictable=True)
        # Arena is fully retired; a new slab must evict a (the LRU) first.
        c = alloc.alloc("c", 16)
        assert a.freed and not b.freed
        assert c.page_start == a.page_start
        assert get_metrics().value("kvcache.evictions") == 1

    def test_duplicate_seq_id_rejected(self):
        alloc = KVCacheAllocator(make_config())
        alloc.alloc("s", 8)
        with pytest.raises(ValueError, match="already owns"):
            alloc.alloc("s", 8)

    def test_grow_oom_keeps_original_slab(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=32))
        a = alloc.alloc("a", 16)
        alloc.alloc("b", 16)
        a.length = 10
        with pytest.raises(KVCacheOOM):
            alloc.grow(a, 32)
        assert not a.freed
        assert alloc.grow(a, 16) is a  # still owned and usable

    def test_thread_safety_under_churn(self):
        alloc = KVCacheAllocator(make_config(capacity_tokens=256, max_seq=32))
        errors = []

        def worker(tid):
            rng = np.random.default_rng(tid)
            try:
                for i in range(40):
                    slab = alloc.alloc(f"t{tid}-{i}", int(rng.integers(1, 20)))
                    slab.k(0)[:] = tid
                    alloc.release(slab, evictable=bool(rng.integers(2)))
            except KVCacheOOM:
                pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        report = alloc.check()
        assert not has_errors(report.diagnostics)


class TestSlabPlanSanitizer:
    def test_live_layout_passes(self):
        alloc = KVCacheAllocator(make_config())
        for i in range(3):
            alloc.alloc(f"s{i}", 16)
        report = alloc.check()
        assert not has_errors(report.diagnostics)
        assert report.checked_tensors == 3
        assert report.peak_bytes == 3 * 2 * make_config().page_bytes

    def test_overlap_detected(self):
        alloc = KVCacheAllocator(make_config())
        alloc.alloc("a", 16)
        alloc.alloc("b", 16)
        plan = alloc.to_memory_plan()
        # Forge an aliasing layout: move b onto a's offset.
        plan.offsets["b"] = plan.offsets["a"]
        report = check_slab_plan(plan, page_bytes=alloc.config.page_bytes)
        assert any(d.rule == "mem-overlap" for d in report.diagnostics)

    def test_misaligned_and_unpaged_detected(self):
        alloc = KVCacheAllocator(make_config())
        alloc.alloc("a", 8)
        plan = alloc.to_memory_plan()
        plan.offsets["a"] = 3
        report = check_slab_plan(plan, page_bytes=alloc.config.page_bytes)
        rules = {d.rule for d in report.diagnostics}
        assert "mem-misaligned" in rules and "mem-unpaged" in rules

    def test_out_of_bounds_detected(self):
        alloc = KVCacheAllocator(make_config())
        alloc.alloc("a", 8)
        plan = alloc.to_memory_plan()
        plan.offsets["a"] = plan.arena_bytes
        report = check_slab_plan(plan, page_bytes=alloc.config.page_bytes)
        assert any(d.rule == "mem-out-of-bounds" for d in report.diagnostics)


class TestAllocFaults:
    def test_transient_alloc_faults_are_retried(self):
        plan = FaultPlan([FaultRule("kvcache.alloc", "transient", times=2)], seed=1)
        alloc = KVCacheAllocator(make_config(), faults=plan)
        slab = alloc.alloc("s", 8)  # retries absorb both transients
        assert slab.capacity == 8
        assert plan.injected == 2
        assert get_metrics().value("retry.attempts") == 2

    def test_fatal_alloc_fault_degrades_to_eviction(self):
        # skip=1 spares the setup allocation; the fatal hits "new".
        plan = FaultPlan([FaultRule("kvcache.alloc", "fatal", times=1, skip=1)],
                         seed=1)
        alloc = KVCacheAllocator(make_config(capacity_tokens=32), faults=plan)
        victim = alloc.alloc("old", 16)
        alloc.release(victim, evictable=True)
        # The injected fatal is absorbed by evicting the retired slab and
        # retrying — allocation still succeeds, nothing crashes.
        slab = alloc.alloc("new", 16)
        assert slab.capacity == 16
        assert victim.freed
        assert get_metrics().value("fallback.evict") == 1
        assert get_metrics().value("kvcache.evictions") == 1

    def test_fatal_with_nothing_evictable_is_isolated_oom(self):
        plan = FaultPlan([FaultRule("kvcache.alloc", "fatal", times=1)], seed=1)
        alloc = KVCacheAllocator(make_config(), faults=plan)
        with pytest.raises(KVCacheOOM, match="nothing left to evict"):
            alloc.alloc("s", 8)
        # The fault is accounted as isolated (typed failure, no crash) and
        # the allocator remains fully usable afterwards.
        assert get_metrics().value("faults.isolated") == 1
        assert alloc.alloc("s", 8).capacity == 8

    def test_eviction_ladder_walks_lru_until_fit(self):
        # skip=4 spares the setup allocations; the fatals hit "big"'s
        # attempts, each absorbed by evicting one more retired slab.
        plan = FaultPlan([FaultRule("kvcache.alloc", "fatal", times=3, skip=4)],
                         seed=1)
        alloc = KVCacheAllocator(make_config(capacity_tokens=64), faults=plan)
        slabs = [alloc.alloc(f"s{i}", 16) for i in range(4)]
        for s in slabs:
            alloc.release(s, evictable=True)
        big = alloc.alloc("big", 16)
        assert big.capacity == 16
        assert plan.injected >= 1
