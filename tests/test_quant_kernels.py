"""Int8 GEMM kernels (:mod:`repro.kernels.qgemm`), their op-runner
dispatch, and the quantized entries in the scheme-selection cost model.

The load-bearing property is *exact int32 accumulation*: it makes the
batched product bitwise equal to the per-row product (decode's
token-invariance for free) and the result independent of tile size.
"""

import numpy as np
import pytest

from repro.backends import BackendError
from repro.core.schemes import (
    SchemeConfig,
    clear_scheme_memo,
    select_conv_scheme,
    select_graph_schemes,
)
from repro.core.session import Session
from repro.ir import GraphBuilder
from repro.kernels import GemmStats, matmul, qgemm, qmatmul, quantize_rowwise
from repro.quant import quantize_graph

pytestmark = pytest.mark.quant

RNG = np.random.default_rng(99)


def quantize_weights(w):
    scales = (np.abs(w).max(axis=0) / 127.0).astype(np.float32)
    safe = np.where(scales > 0, scales, 1.0).astype(np.float32)
    wq = np.clip(np.rint(w / safe), -127, 127).astype(np.int8)
    return wq, scales


class TestQuantizeRowwise:
    def test_scales_are_max_abs_over_127(self):
        x = RNG.standard_normal((4, 16)).astype(np.float32)
        xq, scales = quantize_rowwise(x)
        np.testing.assert_allclose(scales, np.abs(x).max(axis=1) / 127.0,
                                   rtol=1e-6)
        assert xq.dtype == np.int8
        assert np.abs(xq).max() <= 127

    def test_zero_row_gets_zero_scale_and_zero_codes(self):
        x = np.zeros((2, 8), np.float32)
        x[1] = RNG.standard_normal(8)
        xq, scales = quantize_rowwise(x)
        assert scales[0] == 0.0
        assert not xq[0].any()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_rowwise(np.zeros((2, 2, 2), np.float32))


class TestQgemm:
    def test_matches_fp_matmul_within_quant_error(self):
        x = RNG.standard_normal((6, 32)).astype(np.float32)
        w = RNG.standard_normal((32, 10)).astype(np.float32)
        wq, col_scales = quantize_weights(w)
        out = qmatmul(x, wq, col_scales)
        ref = matmul(x, w)
        # first-order error budget: per element, |dx*w| + |x*dw| with
        # dx <= x_scale/2 and dw <= w_scale/2, summed over the reduction
        bound = 32 * np.abs(x).max() * np.abs(w).max() / 127
        assert np.max(np.abs(out - ref)) <= bound

    def test_batched_equals_rowwise_bitwise(self):
        # THE decode contract: int32 accumulation is associative, so row
        # t of the batched product is bitwise the single-row product.
        x = RNG.standard_normal((8, 24)).astype(np.float32)
        w = RNG.standard_normal((24, 12)).astype(np.float32)
        wq, cs = quantize_weights(w)
        full = qmatmul(x, wq, cs)
        for t in range(x.shape[0]):
            row = qmatmul(x[t : t + 1], wq, cs)
            np.testing.assert_array_equal(full[t : t + 1], row)

    def test_tile_size_never_changes_the_result(self):
        x = RNG.standard_normal((5, 40)).astype(np.float32)
        w = RNG.standard_normal((40, 9)).astype(np.float32)
        wq, cs = quantize_weights(w)
        outs = [qmatmul(x, wq, cs, tile=t) for t in (4, 16, 512)]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])

    def test_leading_axes_flatten_and_restore(self):
        x = RNG.standard_normal((2, 3, 16)).astype(np.float32)
        w = RNG.standard_normal((16, 5)).astype(np.float32)
        wq, cs = quantize_weights(w)
        out = qmatmul(x, wq, cs)
        assert out.shape == (2, 3, 5)
        np.testing.assert_array_equal(
            out.reshape(6, 5), qmatmul(x.reshape(6, 16), wq, cs)
        )

    def test_records_gemm_stats(self):
        stats = GemmStats()
        x = RNG.standard_normal((4, 8)).astype(np.float32)
        w = RNG.standard_normal((8, 4)).astype(np.float32)
        wq, cs = quantize_weights(w)
        qmatmul(x, wq, cs, stats=stats)
        assert stats.mul_elements == 4 * 8 * 4
        assert stats.base_multiplies >= 1

    def test_rejects_float_operands(self):
        with pytest.raises(ValueError):
            qgemm(np.zeros((2, 2), np.float32), np.zeros((2, 2), np.int8),
                  np.ones(2, np.float32), np.ones(2, np.float32))

    def test_int32_overflow_guard(self):
        k = 1 << 18  # 127 * 127 * 2**18 > 2**31
        with pytest.raises(ValueError):
            qgemm(np.zeros((1, k), np.int8), np.zeros((k, 1), np.int8),
                  np.ones(1, np.float32), np.ones(1, np.float32))

    def test_mismatched_scale_shape_rejected(self):
        wq = np.zeros((8, 4), np.int8)
        with pytest.raises(ValueError):
            qmatmul(np.zeros((1, 8), np.float32), wq, np.ones(3, np.float32))


class TestOpRunnerDispatch:
    def graph(self):
        b = GraphBuilder("mm", seed=1)
        x = b.input("x", (3, 16))
        w = b.constant(RNG.standard_normal((16, 8)).astype(np.float32), name="w")
        b.output(b.matmul(x, w))
        return b.finish()

    def test_int8_matmul_runs_and_tracks_fp(self):
        graph = self.graph()
        q = quantize_graph(graph)
        feeds = {"x": RNG.standard_normal((3, 16)).astype(np.float32)}
        ref = Session(graph).run(feeds)
        out = Session(q).run(feeds)
        (name,) = ref.keys()
        assert np.max(np.abs(out[name] - ref[name])) <= 0.1

    def test_int8_weights_without_scales_is_a_typed_error(self):
        q = quantize_graph(self.graph())
        for node in q.nodes:
            node.attrs.pop("weight_scales", None)
        with pytest.raises(BackendError):
            Session(q).run({"x": np.zeros((3, 16), np.float32)})


class TestSchemeSelection:
    def setup_method(self):
        clear_scheme_memo()

    def test_quantized_divides_direct_cost(self):
        cfg = SchemeConfig(int8_gemm_speedup=4.0)
        fp = select_conv_scheme((3, 3), 16, 16, (4, 4), config=cfg)
        q = select_conv_scheme((3, 3), 16, 16, (4, 4), config=cfg,
                               quantized=True)
        assert q.alternatives["sliding"] == pytest.approx(
            fp.alternatives["sliding"] / 4.0
        )

    def test_quantized_never_selects_winograd(self):
        # A geometry where fp happily picks Winograd.
        cfg = SchemeConfig()
        fp = select_conv_scheme((3, 3), 64, 64, (56, 56), config=cfg)
        assert fp.kind.startswith("winograd")
        q = select_conv_scheme((3, 3), 64, 64, (56, 56), config=cfg,
                               quantized=True)
        assert q.kind == "sliding"
        # ...but still reports the Winograd costs for the record.
        assert any(k.startswith("winograd") for k in q.alternatives)

    def test_quantized_gemm1x1_also_discounted(self):
        cfg = SchemeConfig(int8_gemm_speedup=4.0)
        fp = select_conv_scheme((1, 1), 32, 32, (8, 8), config=cfg)
        q = select_conv_scheme((1, 1), 32, 32, (8, 8), config=cfg,
                               quantized=True)
        assert fp.kind == q.kind == "gemm1x1"
        assert q.cost == pytest.approx(fp.cost / 4.0)

    def test_memo_keys_do_not_collide(self):
        cfg = SchemeConfig()
        fp = select_conv_scheme((3, 3), 8, 8, (8, 8), config=cfg)
        q = select_conv_scheme((3, 3), 8, 8, (8, 8), config=cfg,
                               quantized=True)
        assert fp.cost != q.cost

    def test_graph_walk_detects_int8_conv_weights(self):
        b = GraphBuilder("convnet", seed=0)
        x = b.input("in", (1, 8, 16, 16))
        x = b.conv(x, oc=8, kernel=3, pad_mode="same")
        b.output(x)
        graph = b.finish()
        fp_schemes = select_graph_schemes(graph)
        (wname,) = [n.inputs[1] for n in graph.nodes
                    if n.op_type == "Conv2D"]
        w = graph.constants[wname]
        scales = (np.abs(w.reshape(8, -1)).max(axis=1) / 127.0)
        graph.constants[wname] = np.clip(
            np.rint(w / scales.reshape(-1, 1, 1, 1)), -127, 127
        ).astype(np.int8)
        q_schemes = select_graph_schemes(graph)
        for name, decision in q_schemes.items():
            assert not decision.kind.startswith("winograd")
            assert decision.cost <= fp_schemes[name].cost
