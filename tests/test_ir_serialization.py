"""Tests for the .rmnn binary model format (round-trips + failure injection)."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import FormatError, GraphBuilder, dumps, load_model, loads, save_model
from repro.ir.serialization import MAGIC


def example_graph(seed=0):
    b = GraphBuilder("ser", seed=seed)
    x = b.input("in", (1, 3, 16, 16))
    x = b.conv(x, oc=8, kernel=3, stride=2, activation="relu")
    x = b.batch_norm(x)
    x = b.relu(x)
    x = b.fc(b.global_avg_pool(x), units=5)
    b.output(b.softmax(x))
    return b.finish()


class TestRoundTrip:
    def test_structure_preserved(self):
        g = example_graph()
        g2 = loads(dumps(g))
        assert [n.op_type for n in g2.nodes] == [n.op_type for n in g.nodes]
        assert g2.inputs == g.inputs
        assert g2.outputs == g.outputs
        assert set(g2.constants) == set(g.constants)

    def test_weights_bitexact(self):
        g = example_graph(seed=7)
        g2 = loads(dumps(g))
        for name, value in g.constants.items():
            np.testing.assert_array_equal(g2.constants[name], value)
            assert g2.constants[name].dtype == value.dtype

    def test_attrs_round_trip_as_tuples(self):
        g = example_graph()
        g2 = loads(dumps(g))
        conv = next(n for n in g2.nodes if n.op_type == "Conv2D")
        assert conv.attrs["kernel"] == (3, 3)
        assert conv.attrs["stride"] == (2, 2)
        assert isinstance(conv.attrs["kernel"], tuple)

    def test_double_round_trip_stable(self):
        g = example_graph()
        once = dumps(g)
        twice = dumps(loads(once))
        assert once == twice

    def test_file_round_trip(self, tmp_path):
        g = example_graph()
        path = str(tmp_path / "model.rmnn")
        save_model(g, path)
        g2 = load_model(path)
        assert len(g2.nodes) == len(g.nodes)

    def test_int_dtypes_preserved(self):
        b = GraphBuilder("q")
        x = b.input("in", (1, 4))
        c = b.constant(np.arange(4, dtype=np.int8))
        y = b.graph.add_node("Add", [x, c], ["y"]).outputs[0]
        b.output(y)
        g = b.finish()
        g2 = loads(dumps(g))
        assert g2.constants[c].dtype == np.int8

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_seeds_round_trip(self, seed):
        g = example_graph(seed=seed)
        g2 = loads(dumps(g))
        for name, value in g.constants.items():
            np.testing.assert_array_equal(g2.constants[name], value)


class TestFailureInjection:
    def test_bad_magic(self):
        with pytest.raises(FormatError, match="magic"):
            loads(b"XXXX" + b"\x00" * 64)

    def test_bad_version(self):
        data = bytearray(dumps(example_graph()))
        data[4] = 99
        with pytest.raises(FormatError, match="version"):
            loads(bytes(data))

    def test_truncated_everywhere(self):
        data = dumps(example_graph())
        # chop at a spread of offsets, always a clean FormatError
        for frac in (0.1, 0.3, 0.5, 0.8, 0.99):
            cut = int(len(data) * frac)
            with pytest.raises(FormatError):
                loads(data[:cut])

    def test_corrupt_json(self):
        data = bytearray(dumps(example_graph()))
        # metadata starts at offset 16; stomp it
        data[20:24] = b"\xff\xff\xff\xff"
        with pytest.raises(FormatError):
            loads(bytes(data))

    def test_empty_stream(self):
        with pytest.raises(FormatError, match="truncated"):
            loads(io.BytesIO(b""))

    def test_magic_constant(self):
        assert dumps(example_graph())[:4] == MAGIC
