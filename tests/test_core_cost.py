"""Tests for the Eq. 1/4/5 cost model and device specs."""

import numpy as np
import pytest

from repro.core import BackendCostModel, node_muls, strassen_mul_factor, winograd_tile_cost
from repro.devices import DEVICES, GPU_FLOPS_TABLE, DeviceSpec, get_device
from repro.ir import GraphBuilder


class TestDeviceSpec:
    def test_cpu_flops_sums_top_k(self):
        dev = get_device("MI6")  # 4x2.45 + 4x1.9 GHz
        assert dev.cpu_flops(1) == pytest.approx(2.45e9)
        assert dev.cpu_flops(4) == pytest.approx(4 * 2.45e9)
        assert dev.cpu_flops(8) == pytest.approx((4 * 2.45 + 4 * 1.9) * 1e9)

    def test_cpu_flops_rejects_zero_threads(self):
        with pytest.raises(ValueError, match="threads"):
            get_device("MI6").cpu_flops(0)

    def test_gpu_flops_from_appendix_table(self):
        assert get_device("MI6").gpu_flops() == pytest.approx(42.74e9)  # Adreno 540
        assert get_device("Mate20").gpu_flops() == pytest.approx(31.61e9)  # Mali-G76

    def test_unknown_gpu_default(self):
        dev = DeviceSpec("x", "soc", (2.0,), "MysteryGPU", ("vulkan",))
        assert dev.gpu_flops() == pytest.approx(4e9)

    def test_t_schedule_constants(self):
        dev = get_device("MI6")
        assert dev.t_schedule_ms("opencl") == 0.05
        assert dev.t_schedule_ms("opengl") == 0.05
        assert dev.t_schedule_ms("vulkan") == 0.01
        with pytest.raises(ValueError, match="unknown GPU API"):
            dev.t_schedule_ms("cuda")

    def test_catalog_covers_all_paper_devices(self):
        for name in ["iPhoneX", "iPhone8", "MI6", "Mate20", "P10", "P20",
                     "Pixel2", "Pixel3", "EML-AL00", "PBEM00", "PACM00",
                     "COL-AL10", "OPPO R11", "GalaxyS8"]:
            assert name in DEVICES

    def test_get_device_unknown(self):
        with pytest.raises(KeyError, match="known devices"):
            get_device("Nokia3310")

    def test_appendix_table_values(self):
        # spot-check the paper's published list
        assert GPU_FLOPS_TABLE["Mali-T860"] == 6.83
        assert GPU_FLOPS_TABLE["Adreno 505"] == 3.19
        assert GPU_FLOPS_TABLE["Adreno 640"] == 42.74


def small_graph():
    b = GraphBuilder("g", seed=0)
    x = b.input("in", (1, 16, 32, 32))
    x = b.conv(x, oc=32, kernel=3, activation="relu")
    x = b.conv(x, oc=32, kernel=1)
    b.output(x)
    return b.finish()


class TestNodeMuls:
    def test_direct_conv_muls(self):
        g = small_graph()
        conv3 = next(n for n in g.nodes if n.attrs.get("kernel") == (3, 3))
        assert node_muls(conv3, g) == 32 * 32 * 32 * 16 * 9

    def test_winograd_reduces_muls(self):
        g = small_graph()
        conv3 = next(n for n in g.nodes if n.attrs.get("kernel") == (3, 3))
        direct = node_muls(conv3, g)
        wino = node_muls(conv3, g, scheme_kind="winograd", winograd_n=4)
        assert wino < direct

    def test_strassen_reduces_large_1x1(self):
        b = GraphBuilder("g1", seed=0)
        x = b.input("in", (1, 512, 32, 32))
        x = b.conv(x, oc=512, kernel=1)
        b.output(x)
        g = b.finish()
        conv = next(n for n in g.nodes if n.op_type == "Conv2D")
        direct = node_muls(conv, g)
        fast = node_muls(conv, g, scheme_kind="gemm1x1")
        assert fast < direct

    def test_small_1x1_no_reduction(self):
        g = small_graph()
        conv1 = next(n for n in g.nodes if n.attrs.get("kernel") == (1, 1))
        assert node_muls(conv1, g, scheme_kind="gemm1x1") == node_muls(conv1, g)

    def test_unknown_scheme(self):
        g = small_graph()
        conv = next(n for n in g.nodes if n.op_type == "Conv2D")
        with pytest.raises(ValueError, match="scheme"):
            node_muls(conv, g, scheme_kind="hyperspeed")


class TestStrassenFactor:
    def test_small_is_one(self):
        assert strassen_mul_factor(64, 64, 64) == 1.0

    def test_large_shrinks(self):
        f = strassen_mul_factor(1024, 1024, 1024)
        assert f < (7 / 8) ** 2 + 1e-9

    def test_monotone_in_size(self):
        factors = [strassen_mul_factor(s, s, s) for s in (128, 256, 512, 1024)]
        assert factors == sorted(factors, reverse=True)


class TestWinogradTileCost:
    def test_eq2_literal(self):
        # C(n) = 2*ic*t^3 + ic*oc*t^2 + n*t*(2n+k-1), t = n+k-1
        n, k, ic, oc = 2, 3, 64, 64
        t = n + k - 1
        expected = 2 * ic * t**3 + ic * oc * t**2 + n * t * (2 * n + k - 1)
        assert winograd_tile_cost(n, k, ic, oc, transform_weight=1.0) == expected

    def test_transform_weight_scales_transform_terms_only(self):
        n, k, ic, oc = 2, 3, 8, 8
        t = n + k - 1
        base = winograd_tile_cost(n, k, ic, oc, 1.0)
        double = winograd_tile_cost(n, k, ic, oc, 2.0)
        hadamard = ic * oc * t**2
        assert double - base == pytest.approx(base - hadamard)


class TestBackendCostModel:
    def test_eq5_cpu(self):
        model = BackendCostModel(get_device("MI6"), threads=4)
        muls = 9_800_000  # == 4 threads x 2.45 GHz -> exactly 1 ms
        assert model.cpu_cost_ms(muls) == pytest.approx(1.0)

    def test_eq5_gpu_adds_t_schedule(self):
        model = BackendCostModel(get_device("MI6"), threads=4)
        base = model.gpu_cost_ms(0, "vulkan")
        assert base == pytest.approx(0.01)
        assert model.gpu_cost_ms(42_740_000, "vulkan") == pytest.approx(1.01)

    def test_graph_cost_with_fallback(self):
        g = small_graph()
        model = BackendCostModel(get_device("MI6"), threads=4)
        full = model.graph_cost_ms(g, "vulkan")
        # refusing Conv2D forces the expensive ops onto the (slower) CPU
        none = model.graph_cost_ms(g, "vulkan", supports=lambda op: op != "Conv2D")
        assert none > full

    def test_cpu_vs_gpu_choice_depends_on_size(self):
        model = BackendCostModel(get_device("MI6"), threads=4)
        # tiny op: t_schedule dominates -> CPU cheaper
        assert model.cpu_cost_ms(1000) < model.gpu_cost_ms(1000, "opencl")
        # huge op: GPU FLOPS dominate
        assert model.gpu_cost_ms(10**9, "opencl") < model.cpu_cost_ms(10**9)
